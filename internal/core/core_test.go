package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"summarycache/internal/bloom"
	"summarycache/internal/hashing"
	"summarycache/internal/icp"
)

func TestNewDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(DirectoryConfig{UpdateThreshold: 2}); err == nil {
		t.Error("accepted threshold > 1")
	}
	if _, err := NewDirectory(DirectoryConfig{UpdateThreshold: -0.5}); err == nil {
		t.Error("accepted negative threshold")
	}
	d, err := NewDirectory(DirectoryConfig{ExpectedDocs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec() != hashing.DefaultSpec {
		t.Errorf("default spec = %v", d.Spec())
	}
	if d.Bits() < 16000 {
		t.Errorf("bits = %d, want ≥ 16×1000", d.Bits())
	}
}

func TestDirectoryInsertRemove(t *testing.T) {
	d, err := NewDirectory(DirectoryConfig{ExpectedDocs: 100, UpdateThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	d.Insert("http://a/")
	if !d.Contains("http://a/") || d.Docs() != 1 {
		t.Fatal("insert not reflected")
	}
	d.Remove("http://a/")
	if d.Contains("http://a/") || d.Docs() != 0 {
		t.Fatal("remove not reflected")
	}
	if d.PendingFlips() != 8 { // 4 set + 4 clear
		t.Fatalf("pending flips = %d, want 8", d.PendingFlips())
	}
}

func TestDirectoryThreshold(t *testing.T) {
	d, err := NewDirectory(DirectoryConfig{ExpectedDocs: 1000, UpdateThreshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	// Build up a 100-document directory, then drain.
	for i := 0; i < 100; i++ {
		d.Insert(fmt.Sprintf("http://h/%d", i))
	}
	d.Drain()
	// The threshold is newDocs/currentDocs ≥ 10%: with the directory
	// growing as documents arrive, it trips at the 12th new document
	// (12/112 ≈ 10.7%), and must not trip before the 10th (9/109 < 10%).
	tripped := -1
	for i := 0; i < 20 && tripped < 0; i++ {
		d.Insert(fmt.Sprintf("http://new/%d", i))
		if d.ShouldPublish() {
			tripped = i + 1
		}
	}
	if tripped < 10 || tripped > 13 {
		t.Fatalf("threshold tripped after %d new docs, want ≈12", tripped)
	}
	flips := d.Drain()
	if len(flips) == 0 {
		t.Fatal("drain returned nothing")
	}
	if d.ShouldPublish() || d.PendingFlips() != 0 {
		t.Fatal("drain did not reset state")
	}
}

func TestDirectoryEmptyStartPublishes(t *testing.T) {
	d, err := NewDirectory(DirectoryConfig{ExpectedDocs: 10, UpdateThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if d.ShouldPublish() {
		t.Fatal("empty directory wants to publish")
	}
	d.Insert("http://first/")
	if !d.ShouldPublish() {
		t.Fatal("first document should trip any threshold (1 ≥ 1% of 1)")
	}
}

func TestSnapshotFlipsReproduceFilter(t *testing.T) {
	d, err := NewDirectory(DirectoryConfig{ExpectedDocs: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Insert(fmt.Sprintf("http://h/%d", i))
	}
	flips := d.SnapshotFlips()
	replica := bloom.MustNewFilter(d.Bits(), d.Spec())
	if err := replica.Apply(flips); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !replica.Test(fmt.Sprintf("http://h/%d", i)) {
			t.Fatalf("snapshot lost doc %d", i)
		}
	}
	// Snapshot must not consume the journal.
	if d.PendingFlips() == 0 {
		t.Fatal("SnapshotFlips drained the journal")
	}
}

func TestPeerTableApplyAndProbe(t *testing.T) {
	pt := NewPeerTable()
	if pt.Len() != 0 || len(pt.Peers()) != 0 {
		t.Fatal("new table not empty")
	}
	// Build a directory to generate realistic flips.
	d, _ := NewDirectory(DirectoryConfig{ExpectedDocs: 100})
	d.Insert("http://x/")
	u := &icp.DirUpdate{Spec: d.Spec(), Bits: uint32(d.Bits()), Flips: d.Drain()}
	if err := pt.ApplyUpdate("peerA", u, false); err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 1 || pt.Updates("peerA") != 1 {
		t.Fatalf("table state: len=%d updates=%d", pt.Len(), pt.Updates("peerA"))
	}
	if got := pt.Candidates("http://x/"); len(got) != 1 || got[0] != "peerA" {
		t.Fatalf("candidates = %v", got)
	}
	if got := pt.Candidates("http://definitely-not-there/"); len(got) != 0 {
		t.Fatalf("phantom candidates = %v", got)
	}
	if pt.MemoryBytes() == 0 {
		t.Fatal("zero memory for initialized replica")
	}
	pt.Drop("peerA")
	if pt.Len() != 0 || pt.Updates("peerA") != 0 {
		t.Fatal("drop did not remove peer")
	}
}

func TestPeerTableRejectsBadUpdates(t *testing.T) {
	pt := NewPeerTable()
	if err := pt.ApplyUpdate("p", nil, false); err == nil {
		t.Error("accepted nil update")
	}
	bad := &icp.DirUpdate{Spec: hashing.Spec{FunctionNum: 0, FunctionBits: 32}, Bits: 100}
	if err := pt.ApplyUpdate("p", bad, false); err == nil {
		t.Error("accepted invalid spec")
	}
	if err := pt.ApplyUpdate("p", &icp.DirUpdate{Spec: hashing.DefaultSpec, Bits: 0}, false); err == nil {
		t.Error("accepted zero-bit array")
	}
	// Out-of-range flip.
	u := &icp.DirUpdate{Spec: hashing.DefaultSpec, Bits: 64,
		Flips: []bloom.Flip{{Index: 64, Set: true}}}
	if err := pt.ApplyUpdate("p", u, false); err == nil {
		t.Error("accepted out-of-range flip")
	}
}

func TestPeerTableGeometryChangeReinitializes(t *testing.T) {
	pt := NewPeerTable()
	d, _ := NewDirectory(DirectoryConfig{ExpectedDocs: 100})
	d.Insert("http://old/")
	u := &icp.DirUpdate{Spec: d.Spec(), Bits: uint32(d.Bits()), Flips: d.Drain()}
	if err := pt.ApplyUpdate("p", u, false); err != nil {
		t.Fatal(err)
	}
	// The peer restarts with a different filter size: the old replica
	// contents must not survive.
	u2 := &icp.DirUpdate{Spec: d.Spec(), Bits: uint32(d.Bits()) * 2}
	if err := pt.ApplyUpdate("p", u2, false); err != nil {
		t.Fatal(err)
	}
	if got := pt.Candidates("http://old/"); len(got) != 0 {
		t.Fatalf("stale contents survived geometry change: %v", got)
	}
}

func TestPeerTableFullUpdateResets(t *testing.T) {
	pt := NewPeerTable()
	spec := hashing.DefaultSpec
	u1 := &icp.DirUpdate{Spec: spec, Bits: 1024, Flips: []bloom.Flip{{Index: 1, Set: true}}}
	if err := pt.ApplyUpdate("p", u1, false); err != nil {
		t.Fatal(err)
	}
	// Full update with a different bit: old bit must be gone.
	u2 := &icp.DirUpdate{Spec: spec, Bits: 1024, Flips: []bloom.Flip{{Index: 2, Set: true}}}
	if err := pt.ApplyUpdate("p", u2, true); err != nil {
		t.Fatal(err)
	}
	// Probe via a fabricated filter sharing geometry: we can't query single
	// bits through Candidates, so rebuild expected state and compare via a
	// URL that hashes to bit 1... instead, verify through a third update
	// carrying a clear of bit 2 and checking updates count.
	if pt.Updates("p") != 2 {
		t.Fatalf("updates = %d", pt.Updates("p"))
	}
}

// --- Node integration tests ---

// testMesh builds n summary-cache nodes with per-node document sets and
// full peering.
type testMesh struct {
	nodes []*Node
	docs  []map[string]bool
	mus   []sync.Mutex
}

func newTestMesh(t *testing.T, n int, threshold float64) *testMesh {
	t.Helper()
	m := &testMesh{
		nodes: make([]*Node, n),
		docs:  make([]map[string]bool, n),
		mus:   make([]sync.Mutex, n),
	}
	for i := 0; i < n; i++ {
		i := i
		m.docs[i] = make(map[string]bool)
		node, err := NewNode(NodeConfig{
			ListenAddr: "127.0.0.1:0",
			Directory: DirectoryConfig{
				ExpectedDocs: 1000, LoadFactor: 16, UpdateThreshold: threshold,
			},
			HasDocument: func(url string) bool {
				m.mus[i].Lock()
				defer m.mus[i].Unlock()
				return m.docs[i][url]
			},
			MinFlipsToPublish: 1, // tests want immediate propagation
			QueryTimeout:      2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		m.nodes[i] = node
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if err := m.nodes[i].AddPeer(m.nodes[j].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return m
}

// add stores url at node i's cache and notifies the protocol.
func (m *testMesh) add(i int, url string) {
	m.mus[i].Lock()
	m.docs[i][url] = true
	m.mus[i].Unlock()
	m.nodes[i].HandleInsert(url)
}

// remove deletes url from node i's cache and notifies the protocol.
func (m *testMesh) remove(i int, url string) {
	m.mus[i].Lock()
	delete(m.docs[i], url)
	m.mus[i].Unlock()
	m.nodes[i].HandleEvict(url)
}

// waitUpdates blocks until node i has applied at least want updates from
// peer, or fails the test.
func (m *testMesh) waitReplicated(t *testing.T, i int, url string, present bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		got := m.nodes[i].PeerSummaries().Candidates(url)
		if (len(got) > 0) == present {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %d: replication of %q (present=%v) timed out", i, url, present)
}

func TestNodeRemoteHitFlow(t *testing.T) {
	m := newTestMesh(t, 3, 0.01)
	const url = "http://shared/doc"
	m.add(1, url)
	m.nodes[1].PublishNow()
	m.waitReplicated(t, 0, url, true)

	hit, candidates, err := m.nodes[0].Lookup(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil {
		t.Fatal("expected remote hit")
	}
	if hit.String() != m.nodes[1].Addr().String() {
		t.Fatalf("hit from %v, want node 1 (%v)", hit, m.nodes[1].Addr())
	}
	if candidates < 1 {
		t.Fatalf("candidates = %d", candidates)
	}
	st := m.nodes[0].Stats()
	if st.RemoteHits != 1 {
		t.Fatalf("remote hits = %d", st.RemoteHits)
	}
}

func TestNodeSummaryRuledOutMeansNoMessages(t *testing.T) {
	m := newTestMesh(t, 3, 0.01)
	// Nothing cached anywhere: lookups must be message-free.
	before := m.nodes[0].Stats().QueriesSent
	hit, candidates, err := m.nodes[0].Lookup(context.Background(), "http://nowhere/")
	if err != nil || hit != nil || candidates != 0 {
		t.Fatalf("hit=%v candidates=%d err=%v", hit, candidates, err)
	}
	if m.nodes[0].Stats().QueriesSent != before {
		t.Fatal("queries sent despite summaries ruling everyone out")
	}
}

func TestNodeFalseHitAfterEviction(t *testing.T) {
	m := newTestMesh(t, 2, 0.01)
	const url = "http://evicted/doc"
	m.add(1, url)
	m.nodes[1].PublishNow()
	m.waitReplicated(t, 0, url, true)

	// Node 1 drops the document but hasn't republished: node 0's replica
	// is stale, producing a false hit — a wasted query, nothing worse.
	m.mus[1].Lock()
	delete(m.docs[1], url)
	m.mus[1].Unlock()
	m.nodes[1].Directory().Remove(url) // journal the eviction, don't publish

	hit, candidates, err := m.nodes[0].Lookup(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if hit != nil {
		t.Fatal("stale summary produced a real hit?")
	}
	if candidates != 1 {
		t.Fatalf("candidates = %d, want 1 (the stale peer)", candidates)
	}
	if m.nodes[0].Stats().FalseHits != 1 {
		t.Fatalf("false hits = %d", m.nodes[0].Stats().FalseHits)
	}
}

func TestNodeEvictionPropagates(t *testing.T) {
	m := newTestMesh(t, 2, 0) // threshold 0: publish every change
	const url = "http://transient/doc"
	m.add(1, url)
	m.waitReplicated(t, 0, url, true)
	m.remove(1, url)
	m.waitReplicated(t, 0, url, false)
}

func TestNodeBootstrapBringsLatePeerUpToDate(t *testing.T) {
	m := newTestMesh(t, 2, 0.01)
	// Populate node 0 BEFORE node 2 joins.
	urls := []string{"http://pre/1", "http://pre/2", "http://pre/3"}
	for _, u := range urls {
		m.add(0, u)
	}
	late, err := NewNode(NodeConfig{
		ListenAddr:   "127.0.0.1:0",
		Directory:    DirectoryConfig{ExpectedDocs: 1000},
		HasDocument:  func(string) bool { return false },
		QueryTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	// Bidirectional peering: node 0's AddPeer(late) ships its full state.
	if err := late.AddPeer(m.nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if err := m.nodes[0].AddPeer(late.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(late.PeerSummaries().Candidates(urls[0])) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, u := range urls {
		if len(late.PeerSummaries().Candidates(u)) != 1 {
			t.Fatalf("late joiner missing pre-existing doc %s", u)
		}
	}
}

func TestNodeRequiresHasDocument(t *testing.T) {
	if _, err := NewNode(NodeConfig{ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("NewNode accepted nil HasDocument")
	}
}

func TestNodeRemovePeer(t *testing.T) {
	m := newTestMesh(t, 2, 0.01)
	const url = "http://gone/"
	m.add(1, url)
	m.nodes[1].PublishNow()
	m.waitReplicated(t, 0, url, true)
	m.nodes[0].RemovePeer(m.nodes[1].Addr())
	if got := m.nodes[0].PeerSummaries().Candidates(url); len(got) != 0 {
		t.Fatalf("dropped peer still a candidate: %v", got)
	}
	if len(m.nodes[0].PeerAddrs()) != 0 {
		t.Fatal("peer address survived removal")
	}
	hit, candidates, err := m.nodes[0].Lookup(context.Background(), url)
	if err != nil || hit != nil || candidates != 0 {
		t.Fatalf("lookup after removal: hit=%v candidates=%d err=%v", hit, candidates, err)
	}
}

func TestNodeConcurrentTraffic(t *testing.T) {
	m := newTestMesh(t, 3, 0.05)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				url := fmt.Sprintf("http://g%d/doc%d", g, i)
				m.add(g, url)
				if i%10 == 0 {
					m.nodes[(g+1)%3].Lookup(context.Background(), url)
				}
			}
		}(g)
	}
	wg.Wait()
	for i := range m.nodes {
		m.nodes[i].PublishNow()
	}
	// Every node's updates must eventually replicate; spot-check one URL.
	m.waitReplicated(t, 1, "http://g0/doc99", true)
}

// Updates over the persistent TCP channel replicate correctly and are
// attributed to the sender's ICP identity (via the embedded port), so
// queries still route to the right UDP endpoint.
func TestNodeTCPUpdates(t *testing.T) {
	docsA := map[string]bool{}
	var muA sync.Mutex
	a, err := NewNode(NodeConfig{
		ListenAddr: "127.0.0.1:0",
		Directory:  DirectoryConfig{ExpectedDocs: 500},
		HasDocument: func(u string) bool {
			muA.Lock()
			defer muA.Unlock()
			return docsA[u]
		},
		MinFlipsToPublish: 1,
		TCPUpdateAddr:     "127.0.0.1:0",
		QueryTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(NodeConfig{
		ListenAddr:        "127.0.0.1:0",
		Directory:         DirectoryConfig{ExpectedDocs: 500},
		HasDocument:       func(string) bool { return false },
		MinFlipsToPublish: 1,
		TCPUpdateAddr:     "127.0.0.1:0",
		QueryTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if a.TCPUpdateAddr() == nil || b.TCPUpdateAddr() == nil {
		t.Fatal("TCP update channels not listening")
	}
	// a sends its updates to b over TCP; b never peers back (one-way is
	// enough for this test).
	if err := a.AddPeerTCP(b.Addr(), b.TCPUpdateAddr().String()); err != nil {
		t.Fatal(err)
	}

	const url = "http://tcp-updates/doc"
	muA.Lock()
	docsA[url] = true
	muA.Unlock()
	a.HandleInsert(url)
	a.PublishNow()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.PeerSummaries().Candidates(url)) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cands := b.PeerSummaries().Candidates(url)
	if len(cands) != 1 {
		t.Fatalf("replica not built over TCP: candidates %v", cands)
	}
	// The replica key must be a's ICP address (embedded identity), not the
	// ephemeral TCP source port.
	if cands[0] != a.Addr().String() {
		t.Fatalf("replica keyed by %s, want %s", cands[0], a.Addr())
	}
	// And b can resolve a remote hit through the normal query path.
	hit, _, err := b.Lookup(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil || hit.String() != a.Addr().String() {
		t.Fatalf("lookup: hit=%v, want %v", hit, a.Addr())
	}
	// No update datagrams traveled over UDP.
	if sent := a.Stats().UDP.Sent; sent > 1 { // the lookup reply is b→a; a sends only its HIT reply
		t.Logf("note: a sent %d UDP datagrams (query replies)", sent)
	}
	if b.Stats().UpdatesReceived == 0 {
		t.Fatal("updates-received counter not incremented")
	}
}

func TestNodeRemovePeerClosesTCP(t *testing.T) {
	a, err := NewNode(NodeConfig{
		ListenAddr:  "127.0.0.1:0",
		Directory:   DirectoryConfig{ExpectedDocs: 10},
		HasDocument: func(string) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(NodeConfig{
		ListenAddr:    "127.0.0.1:0",
		Directory:     DirectoryConfig{ExpectedDocs: 10},
		HasDocument:   func(string) bool { return false },
		TCPUpdateAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeerTCP(b.Addr(), b.TCPUpdateAddr().String()); err != nil {
		t.Fatal(err)
	}
	a.RemovePeer(b.Addr())
	if len(a.PeerAddrs()) != 0 {
		t.Fatal("peer survived removal")
	}
}

// Time-based publication: pending deltas flow without any threshold trip.
func TestNodePublishInterval(t *testing.T) {
	docs := map[string]bool{}
	var mu sync.Mutex
	a, err := NewNode(NodeConfig{
		ListenAddr: "127.0.0.1:0",
		Directory:  DirectoryConfig{ExpectedDocs: 10000, UpdateThreshold: 0.9},
		HasDocument: func(u string) bool {
			mu.Lock()
			defer mu.Unlock()
			return docs[u]
		},
		// Threshold 90% and packet-fill batching would both block
		// publication; only the timer can flush.
		PublishInterval: 30 * time.Millisecond,
		QueryTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(NodeConfig{
		ListenAddr:  "127.0.0.1:0",
		Directory:   DirectoryConfig{ExpectedDocs: 100},
		HasDocument: func(string) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}

	const url = "http://timer/doc"
	mu.Lock()
	docs[url] = true
	mu.Unlock()
	a.HandleInsert(url) // far below threshold and packet size
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.PeerSummaries().Candidates(url)) == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("time-based publication never flushed the journal")
}

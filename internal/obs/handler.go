package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewHandler builds the admin endpoint multiplexer:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar-style JSON of the same metrics
//	/debug/pprof/ the standard net/http/pprof profile handlers
//	/healthz      200 when every known peer is up, 503 otherwise
//
// health may be nil (no peer state: always 200 ok). The handler is meant
// for a loopback or otherwise access-controlled admin listener — pprof
// exposes stacks and heap contents.
func NewHandler(r *Registry, health *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		type resp struct {
			Status    string   `json:"status"`
			PeersUp   []string `json:"peers_up,omitempty"`
			PeersDown []string `json:"peers_down,omitempty"`
		}
		out := resp{Status: "ok"}
		code := http.StatusOK
		if health != nil {
			out.PeersUp, out.PeersDown = health.Snapshot()
			if len(out.PeersDown) > 0 {
				out.Status = "degraded"
				code = http.StatusServiceUnavailable
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(out)
	})
	return mux
}

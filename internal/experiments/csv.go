package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters: every experiment's rows can be written as a CSV table, so
// the paper's figures can be re-plotted from this repository's output with
// any plotting tool. Each function writes a header row followed by one
// record per data point.

func writeCSV(w io.Writer, header []string, records [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(records); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func d(v int) string     { return strconv.Itoa(v) }
func u(v uint64) string  { return strconv.FormatUint(v, 10) }

// Fig1CSV writes Figure 1 rows.
func Fig1CSV(w io.Writer, rows []Fig1Row) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{r.Trace, f(r.CacheFrac), r.Scheme.String(), f(r.HitRatio)})
	}
	return writeCSV(w, []string{"trace", "cache_frac", "scheme", "hit_ratio"}, recs)
}

// Fig2CSV writes Figure 2 rows.
func Fig2CSV(w io.Writer, rows []Fig2Row) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, f(r.Threshold), f(r.HitRatio), f(r.FalseMissRate),
			f(r.FalseHitRate), f(r.StaleHitRate),
		})
	}
	return writeCSV(w, []string{"trace", "threshold", "hit_ratio", "false_miss", "false_hit", "stale_hit"}, recs)
}

// SummaryCSV writes the Figs. 5–8 / Table III comparison rows.
func SummaryCSV(w io.Writer, rows []SummaryRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, r.Label(), f(r.HitRatio), f(r.FalseHit),
			f(r.MsgsPerReq), f(r.BytesPerReq), f(r.MemoryPct),
			u(r.Result.QueryMessages), u(r.Result.UpdateMessages),
		})
	}
	return writeCSV(w, []string{
		"trace", "summary", "hit_ratio", "false_hit", "msgs_per_req",
		"bytes_per_req", "memory_pct", "query_msgs", "update_msgs",
	}, recs)
}

// ScaleCSV writes §V-F scalability rows.
func ScaleCSV(w io.Writer, rows []ScaleRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			d(r.Proxies), f(r.HitRatio), f(r.MsgsPerReq), f(r.ICPMsgsPerReq),
			f(r.SummaryTableMB),
		})
	}
	return writeCSV(w, []string{"proxies", "hit_ratio", "sc_msgs_per_req", "icp_msgs_per_req", "summary_table_mb"}, recs)
}

// AmortCSV writes update-amortization ablation rows.
func AmortCSV(w io.Writer, rows []AmortRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, d(r.MinUpdateDocs), f(r.HitRatio), f(r.MsgsPerReq),
			f(r.BytesPerReq), f(r.ICPFactor),
		})
	}
	return writeCSV(w, []string{"trace", "batch_docs", "hit_ratio", "msgs_per_req", "bytes_per_req", "icp_factor"}, recs)
}

// DigestCSV writes delta-vs-digest ablation rows.
func DigestCSV(w io.Writer, rows []DigestRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, f(r.Threshold), f(r.DeltaBytesReq), f(r.DigestBytesReq),
		})
	}
	return writeCSV(w, []string{"trace", "threshold", "delta_bytes_per_req", "digest_bytes_per_req"}, recs)
}

// HashKCSV writes hash-function-count ablation rows.
func HashKCSV(w io.Writer, rows []HashKRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, d(r.K), strconv.FormatBool(r.Optimal), f(r.FalseHit), f(r.AnalyticFP),
		})
	}
	return writeCSV(w, []string{"trace", "k", "optimal", "false_hit", "analytic_fp"}, recs)
}

// CounterCSV writes counter-width ablation rows.
func CounterCSV(w io.Writer, rows []CounterRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, d(int(r.CounterBits)), u(r.Saturations), f(r.FalseHit), u(r.MemoryBytes),
		})
	}
	return writeCSV(w, []string{"trace", "counter_bits", "saturations", "false_hit", "memory_bytes"}, recs)
}

// LoadFactorCSV writes load-factor sweep rows.
func LoadFactorCSV(w io.Writer, rows []LoadFactorRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, f(r.LoadFactor), f(r.FalseHit), f(r.MsgsPerReq), f(r.MemoryPct),
		})
	}
	return writeCSV(w, []string{"trace", "load_factor", "false_hit", "msgs_per_req", "memory_pct"}, recs)
}

// HierarchyCSV writes hierarchy extension rows.
func HierarchyCSV(w io.Writer, rows []HierarchyRow) error {
	recs := make([][]string, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, []string{
			r.Trace, strconv.FormatBool(r.WithParent), f(r.HitRatio),
			f(r.ParentHitRatio), f(r.OriginMissRate),
		})
	}
	return writeCSV(w, []string{"trace", "with_parent", "sibling_hit", "parent_hit", "origin_miss"}, recs)
}

// TableICSV writes Table I statistics for a set of traces.
func TableICSV(w io.Writer, sets []TraceSet) error {
	recs := make([][]string, 0, len(sets))
	for _, ts := range sets {
		s := ts.Stats
		recs = append(recs, []string{
			s.Name, u(s.Requests), d(s.Clients), d(ts.Groups), u(s.UniqueDocs),
			u(s.InfiniteCacheSize), f(s.MaxHitRatio), f(s.MaxByteHitRatio),
			fmt.Sprint(ts.AvgDocBytes),
		})
	}
	return writeCSV(w, []string{
		"trace", "requests", "clients", "groups", "unique_docs",
		"infinite_cache_bytes", "max_hit_ratio", "max_byte_hit_ratio", "avg_doc_bytes",
	}, recs)
}

package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	reqs := []Request{
		{Time: 0, Client: 3, URL: "http://a.com/x", Size: 1024, Version: 0},
		{Time: 5, Client: -7, URL: "http://b.com/y?q=1", Size: 0, Version: -3},
		{Time: 5, Client: 0, URL: "", Size: 1 << 40, Version: 9},
		{Time: 100, Client: 1 << 20, URL: "http://c.com/" + strings.Repeat("p", 500), Size: 77, Version: 0},
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(reqs) {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewBinaryReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], reqs[i])
		}
	}
}

func TestBinaryRejectsBadInput(t *testing.T) {
	w := NewBinaryWriter(io.Discard)
	if err := w.Write(Request{Time: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Request{Time: 5}); err == nil {
		t.Error("accepted decreasing time")
	}
	if err := w.Write(Request{Time: 10, Size: -1}); err == nil {
		t.Error("accepted negative size")
	}
	if err := w.Write(Request{Time: 10, URL: strings.Repeat("x", maxBinaryURLLen+1)}); err == nil {
		t.Error("accepted oversize URL")
	}
}

func TestBinaryReaderErrors(t *testing.T) {
	// Wrong magic.
	if _, err := NewBinaryReader(strings.NewReader("XXXXX....")).Read(); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v", err)
	}
	// Empty stream: clean EOF.
	if _, err := NewBinaryReader(strings.NewReader("")).Read(); err != io.EOF {
		t.Errorf("empty: err = %v", err)
	}
	// Truncated mid-record.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(Request{Time: 1, URL: "http://long.example.com/path"})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := NewBinaryReader(bytes.NewReader(trunc)).ReadAll(); err == nil {
		t.Error("accepted truncated stream")
	}
	// Corrupt URL length.
	data := append([]byte(nil), binaryMagic[:]...)
	data = append(data, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := NewBinaryReader(bytes.NewReader(data)).Read(); err == nil {
		t.Error("accepted absurd URL length")
	}
}

// Property: any monotone-time request sequence round-trips exactly.
func TestQuickBinaryRoundTrip(t *testing.T) {
	prop := func(deltas []uint16, clients []int16, urls []string) bool {
		n := len(deltas)
		if len(clients) < n {
			n = len(clients)
		}
		if len(urls) < n {
			n = len(urls)
		}
		var reqs []Request
		tm := int64(0)
		for i := 0; i < n; i++ {
			tm += int64(deltas[i])
			url := strings.Map(func(r rune) rune {
				if r == ' ' || r == '\n' || r == '\t' {
					return '_'
				}
				return r
			}, urls[i])
			reqs = append(reqs, Request{
				Time: tm, Client: int(clients[i]), URL: url,
				Size: int64(i) * 17, Version: int64(i%5) - 2,
			})
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		for _, r := range reqs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		w.Flush()
		got, err := NewBinaryReader(&buf).ReadAll()
		if err != nil || len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The binary format must be substantially denser than text.
func TestBinaryDensity(t *testing.T) {
	var txt, bin bytes.Buffer
	tw := NewWriter(&txt)
	bw := NewBinaryWriter(&bin)
	for i := 0; i < 1000; i++ {
		r := Request{Time: int64(i / 10), Client: i % 50,
			URL: "http://s12.example.com/doc34567.html", Size: 4096, Version: 0}
		tw.Write(r)
		bw.Write(r)
	}
	tw.Flush()
	bw.Flush()
	if bin.Len() >= txt.Len() {
		t.Errorf("binary (%d B) not denser than text (%d B)", bin.Len(), txt.Len())
	}
}

func BenchmarkTextCodec(b *testing.B) {
	reqs := make([]Request, 1000)
	for i := range reqs {
		reqs[i] = Request{Time: int64(i), Client: i % 50,
			URL: "http://s12.example.com/doc34567.html", Size: 4096}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range reqs {
			w.Write(r)
		}
		w.Flush()
		if _, err := NewReader(&buf).ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryCodec(b *testing.B) {
	reqs := make([]Request, 1000)
	for i := range reqs {
		reqs[i] = Request{Time: int64(i), Client: i % 50,
			URL: "http://s12.example.com/doc34567.html", Size: 4096}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		for _, r := range reqs {
			w.Write(r)
		}
		w.Flush()
		if _, err := NewBinaryReader(&buf).ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReadAllAuto(t *testing.T) {
	reqs := []Request{{Time: 1, Client: 2, URL: "http://a/", Size: 10, Version: 0}}
	var txt, bin bytes.Buffer
	tw := NewWriter(&txt)
	tw.Write(reqs[0])
	tw.Flush()
	bw := NewBinaryWriter(&bin)
	bw.Write(reqs[0])
	bw.Flush()
	for name, buf := range map[string]*bytes.Buffer{"text": &txt, "binary": &bin} {
		got, err := ReadAllAuto(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 || got[0] != reqs[0] {
			t.Fatalf("%s: got %+v", name, got)
		}
	}
	if got, err := ReadAllAuto(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Fatalf("empty auto-read: %v %v", got, err)
	}
}

package sim

import (
	"testing"

	"summarycache/internal/trace"
	"summarycache/internal/tracegen"
)

// testTrace generates a small shared workload for engine tests.
func testTrace(t testing.TB, requests int) []trace.Request {
	t.Helper()
	reqs, err := tracegen.Generate(tracegen.Config{
		Name: "sim-test", Seed: 11, Requests: requests, Clients: 64, Groups: 4,
		Docs: 4000, SharedFraction: 0.8, LocalityProb: 0.4, ModifyRate: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func cacheSizeFor(t testing.TB, reqs []trace.Request, frac float64, groups int) int64 {
	t.Helper()
	st := trace.ComputeStats("t", reqs)
	per := int64(float64(st.InfiniteCacheSize) * frac / float64(groups))
	if per < 1 {
		per = 1
	}
	return per
}

func TestValidateConfig(t *testing.T) {
	bad := []Config{
		{NumProxies: 0, CacheBytes: 1},
		{NumProxies: 1, CacheBytes: 0},
		{NumProxies: 1, CacheBytes: 1, Summary: SummaryConfig{UpdateThreshold: 2}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
		if _, err := Run(cfg, nil); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
}

func TestUnknownSchemeAndKind(t *testing.T) {
	if _, err := Run(Config{NumProxies: 2, CacheBytes: 1000, Scheme: Scheme(99)}, nil); err == nil {
		t.Error("unknown scheme accepted")
	}
	cfg := Config{NumProxies: 2, CacheBytes: 1000, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: SummaryKind(99)}}
	if _, err := Run(cfg, nil); err == nil {
		t.Error("unknown summary kind accepted")
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []Scheme{NoSharing, SimpleSharing, SingleCopySharing, GlobalCache, GlobalCacheShrunk, Scheme(42)} {
		if s.String() == "" {
			t.Errorf("empty string for scheme %d", int(s))
		}
	}
	for _, k := range []SummaryKind{Oracle, ICP, ExactDirectory, ServerName, Bloom, BloomDigest, SummaryKind(42)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestServerOf(t *testing.T) {
	cases := []struct{ url, want string }{
		{"http://a.com/x/y", "a.com"},
		{"https://b.org", "b.org"},
		{"http://c.net:8080/z", "c.net"},
		{"d.io/path", "d.io"},
		{"http://e.com?q=1", "e.com"},
	}
	for _, c := range cases {
		if got := ServerOf(c.url); got != c.want {
			t.Errorf("ServerOf(%q) = %q, want %q", c.url, got, c.want)
		}
	}
}

// Figure 1's headline ordering: every sharing scheme beats no sharing, and
// simple sharing lands in the neighborhood of single-copy and global.
func TestFig1Ordering(t *testing.T) {
	reqs := testTrace(t, 40000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	run := func(s Scheme) Result {
		r, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: s,
			Summary: SummaryConfig{Kind: Oracle}}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	noShare := run(NoSharing)
	simple := run(SimpleSharing)
	single := run(SingleCopySharing)
	global := run(GlobalCache)

	if simple.HitRatio() <= noShare.HitRatio() {
		t.Errorf("simple sharing (%.3f) must beat no sharing (%.3f)",
			simple.HitRatio(), noShare.HitRatio())
	}
	if single.HitRatio() <= noShare.HitRatio() {
		t.Errorf("single-copy (%.3f) must beat no sharing (%.3f)",
			single.HitRatio(), noShare.HitRatio())
	}
	// The paper finds simple ≈ single-copy ≈ global (within a few points).
	if d := simple.HitRatio() - global.HitRatio(); d < -0.08 || d > 0.12 {
		t.Errorf("simple (%.3f) should track global (%.3f)", simple.HitRatio(), global.HitRatio())
	}
	if noShare.RemoteHits != 0 {
		t.Error("no-sharing produced remote hits")
	}
	if noShare.QueryMessages != 0 || simple.QueryMessages != 0 {
		t.Error("oracle discovery must be message-free")
	}
}

func TestGlobalShrunkSlightlyWorse(t *testing.T) {
	reqs := testTrace(t, 30000)
	per := cacheSizeFor(t, reqs, 0.05, 4)
	g, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: GlobalCache}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: GlobalCacheShrunk}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if gs.HitRatio() > g.HitRatio()+1e-9 {
		t.Errorf("shrunken global (%.4f) beat full global (%.4f)", gs.HitRatio(), g.HitRatio())
	}
	if g.HitRatio()-gs.HitRatio() > 0.05 {
		t.Errorf("10%% shrink cost %.4f hit ratio; paper says the difference is very small",
			g.HitRatio()-gs.HitRatio())
	}
}

// ICP discovery must find the same remote hits as the oracle (it queries
// everyone), at the cost of N-1 queries per miss.
func TestICPMatchesOracleHits(t *testing.T) {
	reqs := testTrace(t, 30000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	oracle, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: Oracle}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	icp, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: ICP}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if icp.HitRatio() != oracle.HitRatio() {
		t.Errorf("ICP hit ratio %.4f != oracle %.4f", icp.HitRatio(), oracle.HitRatio())
	}
	// Queries = (N-1) × (local misses).
	misses := icp.Requests - icp.LocalHits
	if icp.QueryMessages != 3*misses {
		t.Errorf("ICP queries = %d, want %d (3 per local miss)", icp.QueryMessages, 3*misses)
	}
	if icp.UpdateMessages != 0 {
		t.Error("ICP sent summary updates")
	}
}

// Exact-directory summaries with zero threshold are always current: no
// false misses, hit ratio equals ICP's.
func TestExactDirectoryZeroThreshold(t *testing.T) {
	reqs := testTrace(t, 30000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	icp, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: ICP}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: ExactDirectory, UpdateThreshold: 0}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if exact.FalseMisses != 0 {
		t.Errorf("zero-threshold exact directory produced %d false misses", exact.FalseMisses)
	}
	if exact.HitRatio() != icp.HitRatio() {
		t.Errorf("exact-dir hit %.4f != ICP hit %.4f", exact.HitRatio(), icp.HitRatio())
	}
	if exact.QueryMessages >= icp.QueryMessages {
		t.Errorf("exact-dir queries (%d) should be far fewer than ICP (%d)",
			exact.QueryMessages, icp.QueryMessages)
	}
	if exact.UpdateMessages == 0 {
		t.Error("exact-dir never published updates")
	}
}

// Figure 2's shape: hit-ratio degradation grows with the update threshold,
// and stays small at 1%.
func TestFig2ThresholdDegradation(t *testing.T) {
	reqs := testTrace(t, 40000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	hr := map[float64]float64{}
	for _, th := range []float64{0, 0.01, 0.10} {
		r, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
			Summary: SummaryConfig{Kind: ExactDirectory, UpdateThreshold: th}}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		hr[th] = r.HitRatio()
	}
	if hr[0.01] > hr[0]+1e-9 {
		t.Errorf("threshold 1%% hit ratio %.4f exceeds fresh %.4f", hr[0.01], hr[0])
	}
	if hr[0.10] > hr[0.01]+1e-9 {
		t.Errorf("threshold 10%% (%.4f) should not beat 1%% (%.4f)", hr[0.10], hr[0.01])
	}
	// The 1% threshold costs little (paper: 0.02%–1.7% relative).
	if hr[0]-hr[0.01] > 0.05*hr[0] {
		t.Errorf("1%% threshold cost %.2f%% relative hit ratio, want small",
			100*(hr[0]-hr[0.01])/hr[0])
	}
	// And 10% costs more than 1%.
	if hr[0]-hr[0.10] < hr[0]-hr[0.01] {
		t.Error("degradation should grow with threshold")
	}
}

// Figures 5–7's shape: Bloom summaries match exact-directory hit ratios
// closely while using far less memory; server-name has far more false hits;
// everything beats ICP on messages by a wide margin.
func TestSummaryRepresentationShape(t *testing.T) {
	reqs := testTrace(t, 40000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	run := func(k SummaryKind, lf float64) Result {
		r, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
			Summary: SummaryConfig{Kind: k, UpdateThreshold: 0.01, LoadFactor: lf}}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	icp := run(ICP, 0)
	exact := run(ExactDirectory, 0)
	server := run(ServerName, 0)
	bloom8 := run(Bloom, 8)
	bloom16 := run(Bloom, 16)

	// Hit ratios: bloom ≈ exact (within a point or two).
	if d := exact.HitRatio() - bloom16.HitRatio(); d > 0.02 || d < -0.02 {
		t.Errorf("bloom16 hit %.4f vs exact %.4f: |d| too large", bloom16.HitRatio(), exact.HitRatio())
	}
	// False hits: server-name ≫ bloom ≥ exact.
	if server.FalseHitRatio() <= bloom16.FalseHitRatio() {
		t.Errorf("server-name false hits (%.4f) should exceed bloom16 (%.4f)",
			server.FalseHitRatio(), bloom16.FalseHitRatio())
	}
	if bloom8.FalseHitRatio() < bloom16.FalseHitRatio() {
		t.Errorf("bloom8 false hits (%.5f) should be ≥ bloom16 (%.5f)",
			bloom8.FalseHitRatio(), bloom16.FalseHitRatio())
	}
	// Queries: ICP ≫ bloom (the paper's 25–60× total factor emerges at the
	// full 16-proxy scale in the benchmarks; at this toy scale the tiny
	// caches make summary updates disproportionately frequent, so compare
	// query traffic, which is scale-robust).
	factor := float64(icp.QueryMessages) / float64(bloom16.QueryMessages)
	if factor < 5 {
		t.Errorf("ICP/bloom16 query factor %.1f too small", factor)
	}
	// Memory (Table III): bloom16 ≪ exact directory.
	if bloom16.SummaryMemoryBytes >= exact.SummaryMemoryBytes {
		t.Errorf("bloom16 memory %d should be below exact-dir %d",
			bloom16.SummaryMemoryBytes, exact.SummaryMemoryBytes)
	}
	if bloom8.SummaryMemoryBytes >= bloom16.SummaryMemoryBytes {
		t.Error("load factor 8 must use less memory than 16")
	}
	// Bytes per request: bloom must improve on ICP (paper: >50%).
	if bloom16.BytesPerRequest() >= icp.BytesPerRequest() {
		t.Errorf("bloom16 bytes/req %.1f not below ICP %.1f",
			bloom16.BytesPerRequest(), icp.BytesPerRequest())
	}
}

func TestSingleProxyMeshDegeneratesToLocal(t *testing.T) {
	reqs := testTrace(t, 5000)
	r, err := Run(Config{NumProxies: 1, CacheBytes: 1 << 20, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: ICP}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemoteHits != 0 || r.QueryMessages != 0 {
		t.Errorf("single proxy mesh produced remote traffic: %+v", r)
	}
}

func TestResultAccessorsEmpty(t *testing.T) {
	var r Result
	if r.HitRatio() != 0 || r.MessagesPerRequest() != 0 || r.BytesPerRequest() != 0 ||
		r.FalseHitRatio() != 0 || r.StaleHitRatio() != 0 || r.LocalHitRatio() != 0 ||
		r.SummaryMemoryRatio() != 0 {
		t.Fatal("zero-value Result accessors must return 0")
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

// Conservation: every request is exactly one of local hit, remote hit, or
// miss (misses = requests - hits). Cross-check internal counters.
func TestRequestConservation(t *testing.T) {
	reqs := testTrace(t, 20000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	for _, k := range []SummaryKind{Oracle, ICP, ExactDirectory, ServerName, Bloom} {
		r, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
			Summary: SummaryConfig{Kind: k, UpdateThreshold: 0.01}}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalHits() > r.Requests {
			t.Errorf("%v: hits exceed requests", k)
		}
		if r.Requests != uint64(len(reqs)) {
			t.Errorf("%v: requests %d != %d", k, r.Requests, len(reqs))
		}
		if r.FalseHits+r.RemoteStaleHits > r.QueryMessages && k != Oracle {
			t.Errorf("%v: more error events than queries", k)
		}
	}
}

// Determinism: identical config + trace → identical result.
func TestRunDeterministic(t *testing.T) {
	reqs := testTrace(t, 10000)
	cfg := Config{NumProxies: 4, CacheBytes: 1 << 22, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: Bloom, UpdateThreshold: 0.01, LoadFactor: 8}}
	a, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

// A parent cache above the mesh serves misses the siblings cannot,
// reducing origin traffic — the §VIII hierarchical configuration.
func TestParentHierarchy(t *testing.T) {
	reqs := testTrace(t, 30000)
	per := cacheSizeFor(t, reqs, 0.05, 4)
	flat, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: Bloom, UpdateThreshold: 0.01}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	withParent, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
		Summary:          SummaryConfig{Kind: Bloom, UpdateThreshold: 0.01},
		ParentCacheBytes: 4 * per}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if flat.ParentHits != 0 {
		t.Fatal("flat mesh recorded parent hits")
	}
	if withParent.ParentHits == 0 {
		t.Fatal("parent cache never hit")
	}
	// Sibling hit ratio is unchanged (the parent sits below the mesh).
	if d := withParent.HitRatio() - flat.HitRatio(); d > 0.01 || d < -0.01 {
		t.Errorf("parent changed sibling hit ratio: %.4f vs %.4f",
			withParent.HitRatio(), flat.HitRatio())
	}
	if withParent.ParentHitRatio() <= 0 || withParent.ParentHitRatio() > 1 {
		t.Errorf("parent hit ratio %.4f out of range", withParent.ParentHitRatio())
	}
}

// Byte hit ratios track document hit ratios ("results on byte hit ratios
// are very similar") and respect conservation.
func TestByteHitRatio(t *testing.T) {
	reqs := testTrace(t, 30000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	r, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
		Summary: SummaryConfig{Kind: Oracle}}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if r.HitBytes > r.RequestBytes {
		t.Fatal("hit bytes exceed request bytes")
	}
	bhr := r.ByteHitRatio()
	if bhr <= 0 || bhr >= 1 {
		t.Fatalf("byte hit ratio %v out of range", bhr)
	}
	// Same ballpark as the document hit ratio (the paper's observation);
	// byte ratios run lower because large documents are less cacheable.
	if d := r.HitRatio() - bhr; d < -0.25 || d > 0.35 {
		t.Errorf("byte hit %.3f too far from doc hit %.3f", bhr, r.HitRatio())
	}
	// Global scheme also accounts bytes.
	g, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: GlobalCache}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if g.ByteHitRatio() <= 0 {
		t.Fatal("global byte hit ratio zero")
	}
	if (Result{}).ByteHitRatio() != 0 {
		t.Fatal("empty result byte hit not 0")
	}
}

// Package pos is the unchecked-close positive fixture: error-returning
// Close/Flush/Sync calls whose results are silently dropped, including
// the deferred Flush/Sync forms that hide durability errors.
package pos

type handle struct{}

func (handle) Close() error { return nil }
func (handle) Flush() error { return nil }
func (handle) Sync() error  { return nil }

func leak() {
	var h handle
	h.Close() // want unchecked-close
	h.Flush() // want unchecked-close
	h.Sync()  // want unchecked-close
}

func deferredDurability() {
	var h handle
	defer h.Flush() // want unchecked-close
	defer h.Sync()  // want unchecked-close
}

// Package pos is the atomic-mixing positive fixture: every construct
// here mixes atomic and plain access and must be flagged.
package pos

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  uint64        // accessed via atomic.AddUint64 in hot()
	v  atomic.Uint64 // typed atomic
}

func (c *counter) hot() { atomic.AddUint64(&c.n, 1) }

func (c *counter) slow() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++      // want atomic-mixing: plain write of an atomically accessed field
	return c.n // want atomic-mixing: plain read of an atomically accessed field
}

func (c *counter) reset() {
	c.v = atomic.Uint64{} // want atomic-mixing: plain overwrite of a typed atomic
}

func (c *counter) snapshot() atomic.Uint64 {
	return c.v // want atomic-mixing: copying a typed atomic value
}

func sweep(words []atomic.Uint64) uint64 {
	var total uint64
	for _, w := range words { // want atomic-mixing: range value copies each element
		total += w.Load()
	}
	return total
}

// Hierarchy: a two-level cache hierarchy on loopback — two SC-ICP sibling
// children under a shared parent proxy (the §VIII configuration) — plus
// the paper's §V-E recommended-configuration calculator.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"time"

	sc "summarycache"
)

func main() {
	// What would the paper configure for an 8 GB proxy? (§V-E/§V-F.)
	rec, err := sc.Recommend(8<<30, 8192, 100, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paper-recommended configuration for an 8 GB proxy:")
	fmt.Println(" ", rec)
	fmt.Println()

	org, err := sc.StartOrigin(sc.OriginConfig{Latency: 80 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer org.Close()

	parent, err := sc.StartProxy(sc.ProxyConfig{
		Mode: sc.ProxyModeNone, CacheBytes: 128 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer parent.Close()
	fmt.Println("parent proxy:", parent.URL())

	var children []*sc.Proxy
	for i := 0; i < 2; i++ {
		c, err := sc.StartProxy(sc.ProxyConfig{
			Mode:       sc.ProxyModeSCICP,
			CacheBytes: 32 << 20,
			Summary:    sc.DirectoryConfig{ExpectedDocs: 4000, UpdateThreshold: 0.01},
			ParentURL:  parent.URL(),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		children = append(children, c)
		fmt.Printf("child %d: %s (sibling via SC-ICP, misses via parent)\n", i, c.URL())
	}
	for i, c := range children {
		for j, d := range children {
			if i != j {
				if err := c.AddPeer(d.ICPAddr(), d.URL()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	get := func(p *sc.Proxy, target string) time.Duration {
		start := time.Now()
		resp, err := http.Get(p.URL() + sc.ProxyPath + "?url=" + url.QueryEscape(target))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return time.Since(start)
	}

	docA := sc.DocURL(org.URL(), "dept-a/handbook.html", 30000, 0)
	docB := sc.DocURL(org.URL(), "dept-b/schedule.html", 12000, 0)

	fmt.Println("\n1. child 0 fetches doc A: miss everywhere → parent → origin:")
	fmt.Printf("   %v (pays origin latency once; parent now caches A)\n",
		get(children[0], docA).Round(time.Millisecond))

	fmt.Println("2. child 1 fetches doc B the same way:")
	fmt.Printf("   %v\n", get(children[1], docB).Round(time.Millisecond))

	fmt.Println("3. child 1 fetches doc A: its cache misses, sibling summary may still")
	fmt.Println("   be in flight, but the PARENT serves it without touching the origin:")
	fmt.Printf("   %v\n", get(children[1], docA).Round(time.Millisecond))

	fmt.Printf("\norigin requests: %d (three user fetches, two origin round-trips)\n",
		org.Stats().Requests)
	ps := parent.Stats()
	fmt.Printf("parent: %d requests from children, %d local hits\n",
		ps.ClientRequests, ps.LocalHits)
}

// Package perfwatch is the performance-observability subsystem: it turns
// the tracing spans the mesh already records into an always-on per-stage
// latency decomposition, evaluates named service-level objectives (SLOs)
// with error-budget burn rates over them, and — when an objective's burn
// trips — captures a bounded ring of pprof profiles so the regression can
// be diagnosed after the fact.
//
// The paper's argument is quantitative (latency and message savings under
// load, Figs. 5-8), so the repository needs to know not just *that* p99
// moved but *which stage* of the request path owns the movement. A Watch
// implements tracing.SpanSink: every span of every trace — sampled or not,
// retention is orthogonal — feeds one histogram per stage in the family
// summarycache_perf_stage_seconds{stage=...}, and every completed request
// trace feeds the end-to-end "request" stage plus the SLO windows. Layers
// below tracing (the LRU cache, DIRUPDATE codec paths) report through the
// StageTiming func instead, since they have no span of their own.
//
// Everything is stdlib-only and a nil *Watch is a valid disabled watch:
// every method is a no-op, so wiring can thread one unconditionally.
package perfwatch

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"summarycache/internal/obs"
	"summarycache/internal/tracing"
)

// Stage names beyond the tracing span names (which are stages too: a span
// named local_lookup lands in stage "local_lookup"). These cover the
// sub-span timings reported through StageTiming.
const (
	// StageRequest is the end-to-end client request, observed at trace
	// Finish — the total the other stages decompose.
	StageRequest = "request"
	// StageLRUGet / StageLRUInsert are document-cache operations.
	StageLRUGet    = "lru_get"
	StageLRUInsert = "lru_insert"
	// StageDirUpdateEncode / StageDirUpdateApply are the DIRUPDATE codec
	// halves: building outgoing summary deltas and applying received ones.
	StageDirUpdateEncode = "dirupdate_encode"
	StageDirUpdateApply  = "dirupdate_apply"
	// StageICPReply is one peer's ICP answer round-trip as seen by the
	// querier (per-reply RTT, finer than the whole icp_query fan-out).
	StageICPReply = "icp_reply"
	// StageOther absorbs stage names the watch was not built with, so a
	// renamed span never silently drops samples.
	StageOther = "other"
)

// knownStages is every stage the watch pre-registers: the tracing span
// names plus the StageTiming-only stages above.
func knownStages() []string {
	return []string{
		StageRequest,
		tracing.SpanLocalLookup,
		tracing.SpanSummaryProbe,
		tracing.SpanICPQuery,
		tracing.SpanICPAnswer,
		tracing.SpanPeerFetch,
		tracing.SpanOriginFetch,
		StageICPReply,
		StageLRUGet,
		StageLRUInsert,
		StageDirUpdateEncode,
		StageDirUpdateApply,
		StageOther,
	}
}

// Config parameterizes a Watch.
type Config struct {
	// Registry receives the stage histograms, SLO series and capture
	// counters. Nil: a private registry.
	Registry *obs.Registry
	// Labels are attached to every series (e.g. the node address when
	// several watches share a registry).
	Labels obs.Labels
	// Logger receives one structured event per SLO breach and per profile
	// capture. Nil: discarded.
	Logger *slog.Logger
	// Objectives are the SLOs to evaluate; see Objective.
	Objectives []Objective
	// Capture configures anomaly-triggered profile capture; the zero
	// value disables it.
	Capture CaptureConfig
}

// Watch is the performance watcher: a tracing.SpanSink decomposing
// request latency into per-stage histograms, an SLO burn-rate engine over
// the same stream, and an optional profile capturer the SLO engine
// triggers on breach. A nil *Watch is a valid disabled watch.
type Watch struct {
	log    *slog.Logger
	stages map[string]*obs.Histogram // immutable after New — lock-free reads
	other  *obs.Histogram
	reqH   *obs.Histogram

	slos     []*sloState
	capturer *Capturer

	evalMu   sync.Mutex
	lastEval time.Time
	last     []SLOStatus
}

// New builds a Watch from cfg.
func New(cfg Config) *Watch {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w := &Watch{
		log:    obs.OrNop(cfg.Logger),
		stages: make(map[string]*obs.Histogram),
	}
	for _, stage := range knownStages() {
		w.stages[stage] = reg.Histogram("summarycache_perf_stage_seconds",
			"request latency decomposed by pipeline stage",
			cfg.Labels.With("stage", stage), nil)
	}
	w.other = w.stages[StageOther]
	w.reqH = w.stages[StageRequest]
	w.capturer = newCapturer(cfg.Capture, reg, cfg.Labels, w.log)
	for _, o := range cfg.Objectives {
		w.slos = append(w.slos, newSLOState(o, reg, cfg.Labels))
	}
	return w
}

// hist maps a stage name to its histogram (StageOther for unknown names).
func (w *Watch) hist(stage string) *obs.Histogram {
	if h, ok := w.stages[stage]; ok {
		return h
	}
	return w.other
}

// StageTiming records one sub-span stage sample (LRU ops, DIRUPDATE codec
// halves, per-reply ICP RTT). Safe on a nil Watch and safe for concurrent
// use; it allocates nothing, so hot paths may call it unconditionally.
func (w *Watch) StageTiming(stage string, d time.Duration) {
	if w == nil {
		return
	}
	w.hist(stage).ObserveDuration(d)
}

// OnSpan implements tracing.SpanSink: every recorded span lands in its
// stage histogram, regardless of the trace's sampling fate.
func (w *Watch) OnSpan(node string, s tracing.Span) {
	if w == nil {
		return
	}
	w.hist(s.Name).Observe(float64(s.DurationUS) / 1e6)
}

// OnFinish implements tracing.SpanSink: completed request traces feed the
// end-to-end "request" stage and every SLO window. A request that exceeds
// a latency objective's threshold returns an "slo:<name>" anomaly reason,
// which the tracer turns into tail-based always-keep — the breaching
// trace survives any head-sampling rate, including zero.
func (w *Watch) OnFinish(node, kind, outcome string, d time.Duration) string {
	if w == nil || kind != tracing.KindRequest {
		return ""
	}
	w.reqH.ObserveDuration(d)
	reason := ""
	for _, s := range w.slos {
		if r := s.onRequest(outcome, d); r != "" && reason == "" {
			reason = r
		}
	}
	return reason
}

// Capturer returns the profile capturer (nil on a nil or capture-disabled
// Watch).
func (w *Watch) Capturer() *Capturer {
	if w == nil {
		return nil
	}
	return w.capturer
}

// StageSummary is one row of the per-stage breakdown: how many samples a
// stage absorbed and where its latency distribution sits.
type StageSummary struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// Stages returns the non-empty stages ordered by total time descending
// (the order a latency investigation wants), "request" first as the total
// being decomposed.
func (w *Watch) Stages() []StageSummary {
	if w == nil {
		return nil
	}
	var out []StageSummary
	for stage, h := range w.stages {
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, StageSummary{
			Stage: stage,
			Count: n,
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.Stage == StageRequest) != (b.Stage == StageRequest) {
			return a.Stage == StageRequest
		}
		if a.Sum != b.Sum {
			return a.Sum > b.Sum
		}
		return a.Stage < b.Stage
	})
	return out
}

// Package experiments reproduces the paper's trace-driven evaluation: each
// exported function regenerates the data behind one figure or table
// (Fig. 1, Fig. 2, Figs. 5–8, Tables I and III, and the §V-F scalability
// extrapolation), returning structured rows that cmd/simulate renders and
// bench_test.go replays as benchmarks. EXPERIMENTS.md records the measured
// outputs next to the paper's published values.
package experiments

import (
	"fmt"

	"summarycache/internal/sim"
	"summarycache/internal/trace"
	"summarycache/internal/tracegen"
)

// TraceSet is a loaded workload plus the derived parameters the paper's
// simulations use (group count, per-proxy cache size base, average document
// size for Bloom sizing).
type TraceSet struct {
	Name        string
	Requests    []trace.Request
	Stats       trace.Stats
	Groups      int
	AvgDocBytes int64
}

// CacheBytesPerProxy returns the per-proxy cache size for a fraction of the
// trace's infinite cache size (the paper simulates 0.5%–20%; headline
// results use 10%).
func (ts TraceSet) CacheBytesPerProxy(frac float64) int64 {
	per := int64(float64(ts.Stats.InfiniteCacheSize) * frac / float64(ts.Groups))
	if per < 1 {
		per = 1
	}
	return per
}

// Load synthesizes one preset trace at the given scale and derives its
// parameters.
func Load(p tracegen.Preset, scale float64) (TraceSet, error) {
	reqs, cfg, err := tracegen.GeneratePreset(p, scale)
	if err != nil {
		return TraceSet{}, err
	}
	st := trace.ComputeStats(string(p), reqs)
	// Size Bloom filters by the average *cacheable* document: the cache —
	// and hence the summary — never holds the >250 KB tail, so including
	// it would undersize the filter and inflate false hits.
	avg := st.AvgCacheableDocBytes()
	return TraceSet{
		Name:        string(p),
		Requests:    reqs,
		Stats:       st,
		Groups:      cfg.Groups,
		AvgDocBytes: avg,
	}, nil
}

// LoadAll synthesizes the five paper traces at the given scale.
func LoadAll(scale float64) ([]TraceSet, error) {
	var out []TraceSet
	for _, p := range tracegen.Presets() {
		ts, err := Load(p, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, ts)
	}
	return out, nil
}

// TableI returns the Table I statistics row for a trace.
func TableI(ts TraceSet) trace.Stats { return ts.Stats }

// Fig1Row is one point of Figure 1: a scheme's total hit ratio at a cache
// size fraction.
type Fig1Row struct {
	Trace     string
	CacheFrac float64
	Scheme    sim.Scheme
	HitRatio  float64
	ByteHit   float64 // not plotted in Fig. 1 but reported as "similar"
}

// Fig1Schemes is the scheme set of Figure 1.
var Fig1Schemes = []sim.Scheme{
	sim.NoSharing, sim.SimpleSharing, sim.SingleCopySharing,
	sim.GlobalCache, sim.GlobalCacheShrunk,
}

// Fig1CacheFracs is the cache-size sweep of Figure 1.
var Fig1CacheFracs = []float64{0.005, 0.05, 0.10, 0.20}

// Fig1 reproduces Figure 1 for one trace: hit ratios under the five
// cooperation schemes across cache-size fractions, with oracle discovery
// (the figure isolates scheme benefit, not protocol overhead).
func Fig1(ts TraceSet, fracs []float64) ([]Fig1Row, error) {
	if fracs == nil {
		fracs = Fig1CacheFracs
	}
	var rows []Fig1Row
	for _, frac := range fracs {
		for _, sch := range Fig1Schemes {
			r, err := sim.Run(sim.Config{
				NumProxies: ts.Groups,
				CacheBytes: ts.CacheBytesPerProxy(frac),
				Scheme:     sch,
				Summary:    sim.SummaryConfig{Kind: sim.Oracle, AvgDocBytes: ts.AvgDocBytes},
			}, ts.Requests)
			if err != nil {
				return nil, fmt.Errorf("fig1 %s %v: %w", ts.Name, sch, err)
			}
			rows = append(rows, Fig1Row{
				Trace: ts.Name, CacheFrac: frac, Scheme: sch,
				HitRatio: r.HitRatio(),
				ByteHit:  r.ByteHitRatio(),
			})
		}
	}
	return rows, nil
}

// Fig2Row is one point of Figure 2: the effect of delaying summary updates.
type Fig2Row struct {
	Trace         string
	Threshold     float64
	HitRatio      float64
	FalseMissRate float64 // per request: fresh remote copies the stale summary hid
	FalseHitRate  float64
	StaleHitRate  float64
}

// Fig2Thresholds is the update-delay sweep of Figure 2.
var Fig2Thresholds = []float64{0, 0.001, 0.01, 0.02, 0.05, 0.10}

// Fig2 reproduces Figure 2 for one trace: total hit ratio, false-hit and
// remote-stale-hit ratios versus the update threshold, using the
// exact-directory summary (the figure isolates delay, not representation).
func Fig2(ts TraceSet, thresholds []float64) ([]Fig2Row, error) {
	if thresholds == nil {
		thresholds = Fig2Thresholds
	}
	var rows []Fig2Row
	for _, th := range thresholds {
		r, err := sim.Run(sim.Config{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     sim.SimpleSharing,
			Summary: sim.SummaryConfig{
				Kind: sim.ExactDirectory, UpdateThreshold: th,
				AvgDocBytes: ts.AvgDocBytes,
			},
		}, ts.Requests)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s th=%v: %w", ts.Name, th, err)
		}
		rows = append(rows, Fig2Row{
			Trace: ts.Name, Threshold: th,
			HitRatio:      r.HitRatio(),
			FalseMissRate: float64(r.FalseMisses) / float64(r.Requests),
			FalseHitRate:  r.FalseHitRatio(),
			StaleHitRate:  r.StaleHitRatio(),
		})
	}
	return rows, nil
}

// SummaryRow is one row of the summary-representation comparison that
// underlies Figures 5–8 and Table III.
type SummaryRow struct {
	Trace       string
	Kind        sim.SummaryKind
	LoadFactor  float64 // Bloom only
	HitRatio    float64 // Fig. 5
	FalseHit    float64 // Fig. 6
	MsgsPerReq  float64 // Fig. 7
	BytesPerReq float64 // Fig. 8
	MemoryPct   float64 // Table III: summary table as % of cache size
	Result      sim.Result
}

// Label renders the representation name as the paper's figures do.
func (r SummaryRow) Label() string {
	if r.Kind == sim.Bloom {
		return fmt.Sprintf("bloom_%g", r.LoadFactor)
	}
	return r.Kind.String()
}

// SummaryVariant names one summary configuration to compare.
type SummaryVariant struct {
	Kind       sim.SummaryKind
	LoadFactor float64
}

// PaperSummaryVariants is the comparison set of Figures 5–8: ICP,
// exact-directory, server-name, and Bloom filters at load factors 8/16/32.
var PaperSummaryVariants = []SummaryVariant{
	{Kind: sim.ICP},
	{Kind: sim.ExactDirectory},
	{Kind: sim.ServerName},
	{Kind: sim.Bloom, LoadFactor: 8},
	{Kind: sim.Bloom, LoadFactor: 16},
	{Kind: sim.Bloom, LoadFactor: 32},
}

// SummaryComparison reproduces Figures 5–8 and Table III for one trace:
// each summary representation at a 1% update threshold, cache = 10% of
// infinite, reporting hit ratio, false hits, messages, bytes, and memory.
func SummaryComparison(ts TraceSet, variants []SummaryVariant) ([]SummaryRow, error) {
	if variants == nil {
		variants = PaperSummaryVariants
	}
	var rows []SummaryRow
	for _, v := range variants {
		r, err := sim.Run(sim.Config{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     sim.SimpleSharing,
			Summary: sim.SummaryConfig{
				Kind:            v.Kind,
				UpdateThreshold: 0.01,
				LoadFactor:      v.LoadFactor,
				AvgDocBytes:     ts.AvgDocBytes,
			},
		}, ts.Requests)
		if err != nil {
			return nil, fmt.Errorf("summary %s %v: %w", ts.Name, v.Kind, err)
		}
		rows = append(rows, SummaryRow{
			Trace: ts.Name, Kind: v.Kind, LoadFactor: v.LoadFactor,
			HitRatio:    r.HitRatio(),
			FalseHit:    r.FalseHitRatio(),
			MsgsPerReq:  r.MessagesPerRequest(),
			BytesPerReq: r.BytesPerRequest(),
			MemoryPct:   100 * r.SummaryMemoryRatio(),
			Result:      r,
		})
	}
	return rows, nil
}

// ScaleRow is one point of the §V-F scalability study: protocol overhead
// versus mesh size under Bloom summaries.
type ScaleRow struct {
	Proxies        int
	HitRatio       float64
	MsgsPerReq     float64
	BytesPerReq    float64
	SummaryTableMB float64 // memory to hold all peers' summaries
	ICPMsgsPerReq  float64 // the quadratic baseline at the same size
}

// Scalability sweeps the proxy count on a synthetic shared workload,
// reporting the per-request message overhead of Bloom summary cache versus
// ICP — the back-of-the-envelope the paper validates "with larger number
// of proxies".
func Scalability(proxyCounts []int, requestsPerProxy int) ([]ScaleRow, error) {
	if proxyCounts == nil {
		proxyCounts = []int{4, 8, 16, 32, 64}
	}
	var rows []ScaleRow
	for _, n := range proxyCounts {
		cfg := tracegen.Config{
			Name: fmt.Sprintf("scale-%d", n), Seed: 500 + int64(n),
			Requests: requestsPerProxy * n, Clients: 32 * n, Groups: n,
			Docs: 4000 * n, ZipfAlpha: 0.8,
			SharedFraction: 0.7, LocalityProb: 0.4, ModifyRate: 0.005,
		}
		reqs, err := tracegen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		st := trace.ComputeStats(cfg.Name, reqs)
		per := int64(float64(st.InfiniteCacheSize) * 0.10 / float64(n))
		avg := st.AvgCacheableDocBytes()
		run := func(kind sim.SummaryKind) (sim.Result, error) {
			return sim.Run(sim.Config{
				NumProxies: n, CacheBytes: per, Scheme: sim.SimpleSharing,
				Summary: sim.SummaryConfig{
					Kind: kind, UpdateThreshold: 0.01, LoadFactor: 16,
					AvgDocBytes: avg,
					// The prototype's fill-an-IP-packet batching; without
					// it, scaled-down caches make the (N−1)-fan-out update
					// traffic grow linearly and mask the flat-vs-linear
					// contrast §V-F predicts.
					MinUpdateDocs: 90,
				},
			}, reqs)
		}
		b, err := run(sim.Bloom)
		if err != nil {
			return nil, err
		}
		i, err := run(sim.ICP)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{
			Proxies:        n,
			HitRatio:       b.HitRatio(),
			MsgsPerReq:     b.MessagesPerRequest(),
			BytesPerReq:    b.BytesPerRequest(),
			SummaryTableMB: float64(b.SummaryMemoryBytes*uint64(n-1)) / (1 << 20),
			ICPMsgsPerReq:  i.MessagesPerRequest(),
		})
	}
	return rows, nil
}

// AmortRow is one point of the update-amortization ablation: how the
// total message overhead falls as update batches grow toward the paper's
// regime (million-entry caches where a 1% threshold batches thousands of
// documents per update).
type AmortRow struct {
	Trace         string
	MinUpdateDocs int
	HitRatio      float64
	MsgsPerReq    float64
	BytesPerReq   float64
	ICPFactor     float64 // ICP messages per request / this row's
}

// UpdateAmortization sweeps the update batch size for Bloom summaries
// (load factor 16, 1% threshold) on one trace, against the ICP baseline.
// MinUpdateDocs = 1 is the pure threshold rule at simulation scale; ≈90 is
// the prototype's fill-an-IP-packet rule; larger batches approximate the
// paper's big-cache regime. The paper's 25–60× total message reduction
// (Fig. 7) emerges as batches amortize the N−1 update fan-out.
func UpdateAmortization(ts TraceSet, batches []int) ([]AmortRow, error) {
	if batches == nil {
		batches = []int{1, 10, 30, 90, 300}
	}
	base := sim.Config{
		NumProxies: ts.Groups,
		CacheBytes: ts.CacheBytesPerProxy(0.10),
		Scheme:     sim.SimpleSharing,
	}
	icpCfg := base
	icpCfg.Summary = sim.SummaryConfig{Kind: sim.ICP, AvgDocBytes: ts.AvgDocBytes}
	icp, err := sim.Run(icpCfg, ts.Requests)
	if err != nil {
		return nil, err
	}
	var rows []AmortRow
	for _, b := range batches {
		cfg := base
		cfg.Summary = sim.SummaryConfig{
			Kind: sim.Bloom, UpdateThreshold: 0.01, LoadFactor: 16,
			AvgDocBytes: ts.AvgDocBytes, MinUpdateDocs: b,
		}
		r, err := sim.Run(cfg, ts.Requests)
		if err != nil {
			return nil, err
		}
		row := AmortRow{
			Trace: ts.Name, MinUpdateDocs: b,
			HitRatio:    r.HitRatio(),
			MsgsPerReq:  r.MessagesPerRequest(),
			BytesPerReq: r.BytesPerRequest(),
		}
		if row.MsgsPerReq > 0 {
			row.ICPFactor = icp.MessagesPerRequest() / row.MsgsPerReq
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// HierarchyRow compares a flat sibling mesh against the same mesh with a
// parent proxy above it (§VIII's hierarchical caching, which the paper
// names but does not simulate).
type HierarchyRow struct {
	Trace          string
	WithParent     bool
	HitRatio       float64 // local + sibling hits
	ParentHitRatio float64
	OriginMissRate float64 // requests that reached the origin
}

// Hierarchy runs the Bloom summary mesh with and without a parent whose
// cache equals the combined child capacity, reporting how much origin
// traffic the extra tier removes.
func Hierarchy(ts TraceSet) ([]HierarchyRow, error) {
	var rows []HierarchyRow
	for _, withParent := range []bool{false, true} {
		cfg := sim.Config{
			NumProxies: ts.Groups,
			CacheBytes: ts.CacheBytesPerProxy(0.10),
			Scheme:     sim.SimpleSharing,
			Summary: sim.SummaryConfig{
				Kind: sim.Bloom, UpdateThreshold: 0.01, LoadFactor: 16,
				AvgDocBytes: ts.AvgDocBytes,
			},
		}
		if withParent {
			cfg.ParentCacheBytes = cfg.CacheBytes * int64(ts.Groups)
		}
		r, err := sim.Run(cfg, ts.Requests)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HierarchyRow{
			Trace: ts.Name, WithParent: withParent,
			HitRatio:       r.HitRatio(),
			ParentHitRatio: r.ParentHitRatio(),
			OriginMissRate: 1 - r.HitRatio() - r.ParentHitRatio(),
		})
	}
	return rows, nil
}

// LoadFromRequests builds a TraceSet from externally supplied requests
// (e.g. a real proxy log converted to the trace text format), deriving the
// same parameters Load does for synthetic presets.
func LoadFromRequests(name string, reqs []trace.Request, groups int) TraceSet {
	if groups <= 0 {
		groups = 1
	}
	st := trace.ComputeStats(name, reqs)
	return TraceSet{
		Name:        name,
		Requests:    reqs,
		Stats:       st,
		Groups:      groups,
		AvgDocBytes: st.AvgCacheableDocBytes(),
	}
}

// Command proxybench runs the paper's networked prototype experiments on
// loopback: the Table II synthetic benchmark (no-ICP vs ICP vs SC-ICP with
// no inter-proxy hits) and the Table IV/V trace replays (client-bound and
// round-robin).
//
// Usage:
//
//	proxybench -experiment=table2|table4|table5|micro|all [-latency=20ms] [-clients=30] [-requests=200]
//
// -experiment=micro runs the concurrent-load microbenchmarks (sharded LRU
// and lock-free summary probes against the frozen single-lock baselines,
// plus SC-ICP mesh throughput) and writes the results as JSON to -out
// (default BENCH_PR3.json). -benchdiff runs them and diffs the fresh
// numbers against the latest committed BENCH_*.json, exiting non-zero
// when any scenario falls below -benchdiff-floor (it only writes -out
// when given explicitly).
//
// With -admin set, an observability endpoint serves live /metrics,
// /debug/vars and /debug/pprof/ for every proxy in the running mesh —
// profile the benchmark while it runs. Add -trace-sample to also serve
// /debug/traces: correlated request traces (with summary-decision audits)
// from the whole mesh, one store per run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"text/tabwriter"
	"time"

	sc "summarycache"
)

var (
	experiment = flag.String("experiment", "all", "experiment: all, table2, table4, table5, micro (micro is not part of all)")
	microOut   = flag.String("out", "BENCH_PR3.json", "output path for -experiment=micro JSON results")
	microDur   = flag.Duration("micro-duration", 500*time.Millisecond, "per-scenario duration for -experiment=micro")
	microSweep = flag.Int("micro-sweeps", 0, "full micro sweeps to merge best-of; 1 makes CI smoke runs cheap (0: default)")
	benchdiff  = flag.Bool("benchdiff", false, "run the microbenchmarks and diff them against the latest committed BENCH_*.json; exits non-zero when a scenario regresses below -benchdiff-floor")
	diffFloor  = flag.Float64("benchdiff-floor", 0.95, "minimum acceptable new/old ops-per-sec ratio for -benchdiff")
	latency    = flag.Duration("latency", 20*time.Millisecond, "origin latency (paper: 1s)")
	clients    = flag.Int("clients", 30, "clients per proxy (paper: 30)")
	requests   = flag.Int("requests", 200, "requests per client (paper: 200)")
	replayN    = flag.Int("replay", 12000, "trace requests to replay for tables 4/5 (paper: 24000)")
	traceScale = flag.Float64("trace-scale", 0.25, "UPisa trace scale for replays")
	chaosRate  = flag.Float64("chaos", 0, "fault-injection intensity: UDP loss rate per direction, with proportional delay/duplication and HTTP fault bursts (0: no injection layer)")
	chaosSeed  = flag.Int64("chaos-seed", 1, "fault-injection scenario seed; the same seed replays the same fault schedule")
	adminAddr  = flag.String("admin", "", "admin listen address serving /metrics, /debug/vars and /debug/pprof/ for the live mesh (empty: disabled)")
	traceRate  = flag.Float64("trace-sample", 0, "head-sampling rate in [0,1] for request traces; anomalous traces are always kept once tracing is on")
	traceBuf   = flag.Int("trace-buffer", 0, "trace ring-buffer capacity (0 with -trace-sample=0: tracing disabled)")
	sloP99     = flag.Duration("slo", 0, "client latency SLO threshold: each mesh run gets a per-stage latency breakdown and a client_p99 objective at this threshold (budget 0.01), and proxybench exits non-zero when any run breaches (0: disabled)")
)

// current is the registry (and tracer) of the mesh currently running; each
// benchmark run starts fresh (sequential runs may reuse ephemeral ports,
// and stale series from a finished mesh would otherwise be inherited). The
// admin endpoint always serves the live run.
var (
	current       atomic.Pointer[sc.Registry]
	currentTracer atomic.Pointer[sc.Tracer]
	currentWatch  atomic.Pointer[sc.PerfWatch]
	sloBreaches   int // mesh runs whose -slo objective breached
)

func tracingOn() bool { return *traceRate > 0 || *traceBuf > 0 }
func perfOn() bool    { return *sloP99 > 0 }

func newRunRegistry() *sc.Registry {
	reg := sc.NewRegistry()
	sc.RegisterRuntimeMetrics(reg)
	current.Store(reg)
	if perfOn() {
		currentWatch.Store(sc.NewPerfWatch(sc.PerfConfig{
			Registry: reg,
			Objectives: []sc.PerfObjective{{
				Name:      "client_p99",
				Threshold: *sloP99,
				Budget:    0.01,
			}},
		}))
	}
	// A perf watch needs a tracer to feed it spans, even when no traces
	// are retained (-trace-sample=0 keeps only anomalous ones).
	if tracingOn() || perfOn() {
		currentTracer.Store(sc.NewTracer(sc.TracerConfig{
			HeadRate: *traceRate,
			Buffer:   *traceBuf,
			Registry: reg,
			Sink:     runWatchSink(),
		}))
	}
	return reg
}

// runTracer returns the live run's shared tracer (nil: tracing disabled).
func runTracer() *sc.Tracer { return currentTracer.Load() }

// runWatch returns the live run's perf watch (nil: -slo disabled).
func runWatch() *sc.PerfWatch { return currentWatch.Load() }

// runWatchSink adapts runWatch for TracerConfig.Sink, whose interface a
// typed-nil *PerfWatch would otherwise satisfy non-nil.
func runWatchSink() sc.TracerSink {
	if w := runWatch(); w != nil {
		return w
	}
	return nil
}

var modes = []sc.ProxyMode{sc.ProxyModeNone, sc.ProxyModeICP, sc.ProxyModeSCICP}

// chaosScenario derives the run's fault schedule from -chaos/-chaos-seed
// (nil when -chaos is 0: the benchmark runs with no injection layer).
func chaosScenario() *sc.FaultScenario {
	if *chaosRate <= 0 {
		return nil
	}
	udp := sc.FaultRates{
		Drop:      *chaosRate,
		Duplicate: *chaosRate / 3,
		Delay:     *chaosRate / 2,
		DelayMin:  time.Millisecond,
		DelayMax:  10 * time.Millisecond,
	}
	return &sc.FaultScenario{
		Seed:     *chaosSeed,
		Inbound:  udp,
		Outbound: udp,
		HTTP: sc.FaultHTTPRates{
			ConnectFail: *chaosRate / 3,
			Stall:       *chaosRate / 8,
			StallFor:    50 * time.Millisecond,
			Truncate:    *chaosRate / 3,
			Err5xx:      *chaosRate / 2,
			Burst:       2,
		},
	}
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxybench:", err)
		os.Exit(1)
	}
}

func run() error {
	newRunRegistry()
	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen %q: %w", *adminAddr, err)
		}
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Re-resolved per request: each run swaps in a fresh registry
			// and tracer, and the admin plane must follow the live mesh.
			var mounts []sc.Mount
			if tr := runTracer(); tr != nil {
				mounts = append(mounts, sc.Mount{Pattern: "/debug/traces", Handler: tr.Handler()})
			}
			if pw := runWatch(); pw != nil {
				mounts = append(mounts,
					sc.Mount{Pattern: "/debug/slo", Handler: pw.SLOHandler()},
					sc.Mount{Pattern: "/debug/perf", Handler: pw.PerfHandler()})
			}
			sc.NewAdminHandler(current.Load(), nil, mounts...).ServeHTTP(w, r)
		})}
		go srv.Serve(ln)
		defer srv.Close()
		endpoints := "/metrics /debug/vars /debug/pprof/"
		if tracingOn() {
			endpoints += " /debug/traces"
		}
		if perfOn() {
			endpoints += " /debug/slo /debug/perf"
		}
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s (%s)\n", ln.Addr(), endpoints)
	}
	if *experiment == "micro" || *benchdiff {
		return micro()
	}
	want := func(n string) bool { return *experiment == "all" || *experiment == n }
	if want("table2") {
		for _, hr := range []float64{0.25, 0.45} {
			if err := table2(hr); err != nil {
				return err
			}
		}
	}
	if want("table4") {
		if err := replay(sc.ClientBound, "Table IV (experiment 3: client-bound replay)"); err != nil {
			return err
		}
	}
	if want("table5") {
		if err := replay(sc.RoundRobin, "Table V (experiment 4: round-robin replay)"); err != nil {
			return err
		}
	}
	if sloBreaches > 0 {
		return fmt.Errorf("%d run(s) breached the -slo=%v client_p99 objective", sloBreaches, *sloP99)
	}
	return nil
}

// checkSLO closes the finished run's SLO window, prints the per-stage
// latency breakdown and objective verdict, and tallies a breach. No-op
// without -slo.
func checkSLO(mode sc.ProxyMode) {
	pw := runWatch()
	if pw == nil {
		return
	}
	fmt.Printf("-- stage breakdown (%v) --\n", mode)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stage\tcount\ttotal\tp50\tp99")
	for _, s := range pw.Stages() {
		fmt.Fprintf(w, "%s\t%d\t%.3fs\t%v\t%v\n",
			s.Stage, s.Count, s.Sum,
			time.Duration(s.P50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(s.P99*float64(time.Second)).Round(time.Microsecond))
	}
	w.Flush()
	for _, st := range pw.Evaluate() {
		verdict := "ok"
		if st.Breached {
			verdict = "BREACHED"
			sloBreaches++
		}
		fmt.Printf("slo %s: %s (burn %.2f, %d/%d bad over budget %.4f)\n",
			st.Name, verdict, st.BurnRate, st.WindowBad, st.WindowTotal, st.Budget)
	}
	fmt.Println()
}

func render(title string, results []sc.BenchResult) {
	fmt.Printf("== %s ==\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\thit ratio\tremote hits\tlatency (mean)\tlatency (p90)\tuser CPU\tsys CPU\tUDP msgs\tHTTP msgs\torigin reqs\tload CV\tretries\tfaults")
	for _, r := range results {
		fmt.Fprintf(w, "%v\t%.1f%%\t%.1f%%\t%v\t%v\t%v\t%v\t%d\t%d\t%d\t%.3f\t%d\t%d\n",
			r.Mode, 100*r.HitRatio, 100*r.RemoteHitRatio,
			r.MeanLatency.Round(time.Millisecond), r.P90Latency.Round(time.Millisecond),
			r.CPU.User.Round(10*time.Millisecond), r.CPU.System.Round(10*time.Millisecond),
			r.UDPSent+r.UDPReceived, r.HTTPMessages, r.OriginRequests, r.LoadCV,
			r.Retries, r.FaultsInjected)
	}
	w.Flush()
	fmt.Println()
}

func table2(hitRatio float64) error {
	fmt.Fprintf(os.Stderr, "running Table II at inherent hit ratio %.0f%%...\n", 100*hitRatio)
	var results []sc.BenchResult
	for _, m := range modes {
		r, err := sc.RunSynthetic(sc.SyntheticConfig{
			Mode:              m,
			Proxies:           4,
			ClientsPerProxy:   *clients,
			RequestsPerClient: *requests,
			InherentHitRatio:  hitRatio,
			Disjoint:          true, // the paper's worst case: no remote hits
			OriginLatency:     *latency,
			Seed:              42, // "we use the same seeds ... to ensure comparable results"
			Chaos:             chaosScenario(),
			Metrics:           newRunRegistry(),
			Tracer:            runTracer(),
			Perf:              runWatch(),
		})
		if err != nil {
			return err
		}
		results = append(results, r)
		checkSLO(m)
	}
	render(fmt.Sprintf("Table II: ICP overhead, 4 proxies, inherent hit ratio %.0f%%, no inter-proxy hits", 100*hitRatio), results)
	return nil
}

func micro() error {
	// Resolve the committed baseline before running, so a -benchdiff run
	// that writes its own BENCH_*.json cannot diff against itself.
	var committed string
	var old sc.MicroResult
	if *benchdiff {
		var err error
		if committed, err = sc.LatestBenchFile(".", *microOut); err != nil {
			return fmt.Errorf("-benchdiff: %w", err)
		}
		if old, err = sc.LoadMicroResult(committed); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "running hot-path microbenchmarks at GOMAXPROCS=%d...\n", runtime.GOMAXPROCS(0))
	res, err := sc.RunMicro(sc.MicroConfig{Duration: *microDur, Sweeps: *microSweep})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tgoroutines\tops/sec\tp99\tbaseline ops/sec\tbaseline p99\tspeedup")
	for _, s := range res.Scenarios {
		base, basep99, speedup := "-", "-", "-"
		if s.Baseline != nil {
			base = fmt.Sprintf("%.0f", s.Baseline.OpsPerSec)
			basep99 = fmt.Sprintf("%.1fµs", s.Baseline.P99Micros)
			speedup = fmt.Sprintf("%.2fx", s.Speedup)
		}
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1fµs\t%s\t%s\t%s\n",
			s.Name, s.Goroutines, s.Current.OpsPerSec, s.Current.P99Micros, base, basep99, speedup)
	}
	w.Flush()
	// In -benchdiff mode the JSON is only written when -out was given
	// explicitly; a plain diff run must not clobber the committed baseline.
	outSet := !*benchdiff
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	if outSet {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*microOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *microOut)
	}
	if *benchdiff {
		d := sc.DiffMicro(old, res)
		fmt.Printf("== diff vs %s ==\n%s", committed, d.Format())
		if regs := d.Regressions(*diffFloor); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "regression: %s (%.2fx < %.2fx)\n", r.Name, r.GatedRatio(), *diffFloor)
			}
			return fmt.Errorf("%d scenario(s) below the %.2fx floor vs %s", len(regs), *diffFloor, committed)
		}
		fmt.Fprintf(os.Stderr, "all scenarios within noise of %s (floor %.2fx)\n", committed, *diffFloor)
	}
	return nil
}

func replay(a sc.Assignment, title string) error {
	fmt.Fprintf(os.Stderr, "generating UPisa trace for %v replay...\n", a)
	reqs, _, err := sc.GeneratePreset(sc.PresetUPisa, *traceScale)
	if err != nil {
		return err
	}
	if len(reqs) > *replayN {
		reqs = reqs[:*replayN]
	}
	var results []sc.BenchResult
	for _, m := range modes {
		fmt.Fprintf(os.Stderr, "replaying %d requests under %v...\n", len(reqs), m)
		r, err := sc.RunReplay(sc.ReplayConfig{
			Mode:          m,
			Proxies:       4,
			Workers:       80,
			Assignment:    a,
			Trace:         reqs,
			OriginLatency: *latency,
			Chaos:         chaosScenario(),
			Metrics:       newRunRegistry(),
			Tracer:        runTracer(),
			Perf:          runWatch(),
		})
		if err != nil {
			return err
		}
		results = append(results, r)
		checkSLO(m)
	}
	render(title, results)
	return nil
}

// Package faultnet is a deterministic fault-injection layer for the
// mesh's two network paths: a net-socket wrapper for the ICP UDP traffic
// (drop, delay, duplicate — and, through delayed sends overtaken by later
// ones, reorder) and an http.RoundTripper wrapper for origin and sibling
// HTTP fetches (connect failures, stalls, truncated bodies, 5xx bursts).
//
// Everything is driven by a Scenario: a seed plus per-direction fault
// rates. The same Scenario always produces the same per-event fault
// sequence, so a test failure under chaos is replayable from its seed —
// the paper's §VI-A robustness claims ("loss of previous update messages
// would [not] have cascading effects"; the prototype "detects failure and
// recovery of neighbor proxies") become assertions against a scheduled,
// reproducible storm instead of hopes about a flaky network.
//
// A nil *Injector everywhere means zero-overhead passthrough: the icp,
// core and httpproxy layers only interpose the wrappers when one is
// configured, so production and benchmark hot paths are untouched.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Verdict is the fate assigned to one network event.
type Verdict uint8

// The possible fates of one datagram or HTTP request.
const (
	Pass        Verdict = iota // deliver normally
	Drop                       // silently lose the datagram
	Duplicate                  // deliver twice (UDP outbound only)
	Delay                      // deliver late (outbound: later sends overtake it)
	ConnectFail                // HTTP: fail as if the connection was refused
	Stall                      // HTTP: sit silent before proceeding (trips caller timeouts)
	Truncate                   // HTTP: cut the response body short mid-stream
	Err5xx                     // HTTP: answer 503 instead of forwarding
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	case ConnectFail:
		return "connect_fail"
	case Stall:
		return "stall"
	case Truncate:
		return "truncate"
	case Err5xx:
		return "5xx"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Rates are the per-datagram fault probabilities for one direction of a
// UDP path. The probabilities are disjoint (at most one verdict fires per
// datagram); their sum must not exceed 1.
type Rates struct {
	// Drop is the probability a datagram is silently lost.
	Drop float64
	// Duplicate is the probability a datagram is delivered twice
	// (meaningful outbound; ignored inbound).
	Duplicate float64
	// Delay is the probability a datagram is held for a duration drawn
	// uniformly from [DelayMin, DelayMax]. Outbound, later sends overtake
	// the held datagram — that is the reorder fault.
	Delay              float64
	DelayMin, DelayMax time.Duration
}

func (r Rates) zero() bool { return r.Drop == 0 && r.Duplicate == 0 && r.Delay == 0 }

// HTTPRates are the per-request fault probabilities for the HTTP
// transport wrapper. As with Rates, at most one fault fires per request.
type HTTPRates struct {
	// ConnectFail is the probability a request errors immediately, as if
	// the remote refused the connection.
	ConnectFail float64
	// Stall is the probability the transport sits silent for StallFor
	// before proceeding — long stalls trip the caller's per-attempt
	// timeout, which is the point.
	Stall    float64
	StallFor time.Duration
	// Truncate is the probability the response body is cut short
	// mid-stream, surfacing io.ErrUnexpectedEOF to the reader.
	Truncate float64
	// Err5xx is the probability the request is answered with a
	// synthesized 503 without reaching the remote at all.
	Err5xx float64
	// Burst widens every fault into a run: once any HTTP fault fires, the
	// same fault is applied to the next Burst-1 requests too (default 1 —
	// independent faults). 5xx bursts are how origins actually fail.
	Burst int
}

func (r HTTPRates) zero() bool {
	return r.ConnectFail == 0 && r.Stall == 0 && r.Truncate == 0 && r.Err5xx == 0
}

// Scenario is a complete, replayable fault schedule: a seed plus the
// rates for each path. Two Injectors built from equal Scenarios make
// identical per-event decisions.
type Scenario struct {
	// Seed drives every random decision. Sockets and transports wrapped
	// by one Injector get independent streams derived from (Seed, ordinal),
	// so the n-th datagram through the first-wrapped socket meets the same
	// fate on every run.
	Seed int64
	// Inbound and Outbound are the UDP fault rates per direction.
	Inbound, Outbound Rates
	// HTTP are the transport fault rates.
	HTTP HTTPRates
}

// Fork derives a sub-scenario with the same rates and a seed offset —
// how a mesh gives each member its own independent but reproducible
// injector.
func (s Scenario) Fork(i int64) Scenario {
	s.Seed += i * 0x9e3779b9
	return s
}

// Counter kinds, the label values of the injected-faults counter.
const (
	KindUDPDropIn   = "udp_drop_in"
	KindUDPDropOut  = "udp_drop_out"
	KindUDPDup      = "udp_duplicate"
	KindUDPDelayIn  = "udp_delay_in"
	KindUDPDelayOut = "udp_delay_out"
	KindHTTPConnect = "http_connect_fail"
	KindHTTPStall   = "http_stall"
	KindHTTPTrunc   = "http_truncate"
	KindHTTP5xx     = "http_5xx"
)

// Kinds lists every counter kind, in exposition order.
var Kinds = []string{
	KindUDPDropIn, KindUDPDropOut, KindUDPDup, KindUDPDelayIn, KindUDPDelayOut,
	KindHTTPConnect, KindHTTPStall, KindHTTPTrunc, KindHTTP5xx,
}

// decider turns a seeded random stream plus rates into a deterministic
// verdict sequence. One decider serves one direction of one socket (or
// one transport); callers hold no other lock while consulting it.
type decider struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newDecider(seed int64, ordinal uint64) *decider {
	return &decider{rng: rand.New(rand.NewPCG(uint64(seed), ordinal))}
}

// udpVerdict decides one datagram's fate under r, with the delay to apply
// when the verdict is Delay.
func (d *decider) udpVerdict(r Rates) (Verdict, time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	roll := d.rng.Float64()
	switch {
	case roll < r.Drop:
		return Drop, 0
	case roll < r.Drop+r.Duplicate:
		return Duplicate, 0
	case roll < r.Drop+r.Duplicate+r.Delay:
		return Delay, d.delayIn(r.DelayMin, r.DelayMax)
	}
	return Pass, 0
}

// delayIn draws a delay uniformly from [min, max]; callers hold d.mu.
func (d *decider) delayIn(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(d.rng.Int64N(int64(max-min)+1))
}

// httpDecider adds the burst state the HTTP rates need.
type httpDecider struct {
	decider
	rates     HTTPRates
	burstKind Verdict
	burstLeft int
}

func (d *httpDecider) verdict() Verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.burstLeft > 0 {
		d.burstLeft--
		return d.burstKind
	}
	r := d.rates
	roll := d.rng.Float64()
	var v Verdict
	switch {
	case roll < r.ConnectFail:
		v = ConnectFail
	case roll < r.ConnectFail+r.Stall:
		v = Stall
	case roll < r.ConnectFail+r.Stall+r.Truncate:
		v = Truncate
	case roll < r.ConnectFail+r.Stall+r.Truncate+r.Err5xx:
		v = Err5xx
	default:
		return Pass
	}
	if r.Burst > 1 {
		d.burstKind = v
		d.burstLeft = r.Burst - 1
	}
	return v
}

// Injector instantiates a Scenario: it hands out socket and transport
// wrappers that share the kill switch and the injected-fault accounting.
type Injector struct {
	scenario Scenario
	enabled  atomic.Bool
	ordinal  atomic.Uint64 // next derived-stream ordinal

	counts [len9]atomic.Uint64
}

// len9 pins the counter array to the Kinds list at compile time.
const len9 = 9

func kindIndex(kind string) int {
	for i, k := range Kinds {
		if k == kind {
			return i
		}
	}
	return -1
}

// New instantiates a Scenario. The injector starts enabled.
func New(s Scenario) *Injector {
	inj := &Injector{scenario: s}
	inj.enabled.Store(true)
	return inj
}

// Scenario returns the schedule this injector replays.
func (inj *Injector) Scenario() Scenario { return inj.scenario }

// SetEnabled flips the kill switch: disabled, every wrapper is a pure
// passthrough (the "faults clear" phase of a chaos run). The decision
// streams are not consumed while disabled.
func (inj *Injector) SetEnabled(v bool) { inj.enabled.Store(v) }

// Enabled reports the kill switch.
func (inj *Injector) Enabled() bool { return inj.enabled.Load() }

func (inj *Injector) count(kind int) {
	inj.counts[kind].Add(1)
}

// Count returns how many faults of the given kind have been injected.
func (inj *Injector) Count(kind string) uint64 {
	i := kindIndex(kind)
	if i < 0 {
		return 0
	}
	return inj.counts[i].Load()
}

// Counts snapshots every non-zero fault counter by kind.
func (inj *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64)
	for i, k := range Kinds {
		if v := inj.counts[i].Load(); v > 0 {
			out[k] = v
		}
	}
	return out
}

// Total returns the total number of injected faults.
func (inj *Injector) Total() uint64 {
	var t uint64
	for i := range inj.counts {
		t += inj.counts[i].Load()
	}
	return t
}

// --- UDP path ---

// PacketConn is the socket surface the UDP wrapper decorates;
// *net.UDPConn implements it, and the icp package's endpoints accept it.
type PacketConn interface {
	ReadFromUDP(b []byte) (int, *net.UDPAddr, error)
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
	Close() error
	LocalAddr() net.Addr
}

// WrapUDP decorates a UDP socket with this injector's Inbound/Outbound
// schedule. Each wrapped socket gets its own derived decision streams, so
// a mesh member's fault sequence does not depend on its neighbors'
// traffic.
func (inj *Injector) WrapUDP(c PacketConn) PacketConn {
	if inj == nil {
		return c
	}
	ord := inj.ordinal.Add(1)
	return &udpConn{
		PacketConn: c,
		inj:        inj,
		in:         newDecider(inj.scenario.Seed, ord*2),
		out:        newDecider(inj.scenario.Seed, ord*2+1),
	}
}

type udpConn struct {
	PacketConn
	inj     *Injector
	in, out *decider
}

// ReadFromUDP applies the inbound schedule: dropped datagrams are
// consumed and never surface; delayed ones hold the receive path (queueing
// latency, as a congested NIC would).
func (c *udpConn) ReadFromUDP(b []byte) (int, *net.UDPAddr, error) {
	for {
		n, from, err := c.PacketConn.ReadFromUDP(b)
		if err != nil || !c.inj.Enabled() {
			return n, from, err
		}
		v, d := c.in.udpVerdict(c.inj.scenario.Inbound)
		switch v {
		case Drop:
			c.inj.count(kindIndex(KindUDPDropIn))
			continue
		case Delay:
			c.inj.count(kindIndex(KindUDPDelayIn))
			time.Sleep(d)
		}
		return n, from, err
	}
}

// WriteToUDP applies the outbound schedule. A dropped datagram reports
// success — the network ate it, not the sender. A delayed datagram is
// sent from a timer goroutine, so later writes overtake it (reorder).
func (c *udpConn) WriteToUDP(b []byte, addr *net.UDPAddr) (int, error) {
	if !c.inj.Enabled() {
		return c.PacketConn.WriteToUDP(b, addr)
	}
	v, d := c.out.udpVerdict(c.inj.scenario.Outbound)
	switch v {
	case Drop:
		c.inj.count(kindIndex(KindUDPDropOut))
		return len(b), nil
	case Duplicate:
		c.inj.count(kindIndex(KindUDPDup))
		if n, err := c.PacketConn.WriteToUDP(b, addr); err != nil {
			return n, err
		}
		return c.PacketConn.WriteToUDP(b, addr)
	case Delay:
		c.inj.count(kindIndex(KindUDPDelayOut))
		held := append([]byte(nil), b...)
		time.AfterFunc(d, func() {
			// A send error on a socket closed meanwhile is the same
			// outcome as a drop; nothing to report to the original caller.
			_, _ = c.PacketConn.WriteToUDP(held, addr)
		})
		return len(b), nil
	}
	return c.PacketConn.WriteToUDP(b, addr)
}

// --- HTTP path ---

// ErrInjectedConnect is the error an injected connect failure surfaces
// (wrapped in *url.Error by http.Client, like a real refused connection).
var ErrInjectedConnect = errors.New("faultnet: injected connect failure")

// Transport decorates an http.RoundTripper with this injector's HTTP
// schedule. A nil injector returns base unchanged.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if inj == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	d := &httpDecider{rates: inj.scenario.HTTP}
	// Transports draw from a stream family disjoint from the sockets'.
	d.rng = rand.New(rand.NewPCG(uint64(inj.scenario.Seed), (1<<32)+inj.ordinal.Add(1)))
	return &faultTransport{base: base, inj: inj, d: d}
}

type faultTransport struct {
	base http.RoundTripper
	inj  *Injector
	d    *httpDecider
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !t.inj.Enabled() {
		return t.base.RoundTrip(req)
	}
	switch t.d.verdict() {
	case ConnectFail:
		t.inj.count(kindIndex(KindHTTPConnect))
		return nil, ErrInjectedConnect
	case Stall:
		t.inj.count(kindIndex(KindHTTPStall))
		stall := t.d.rates.StallFor
		if stall <= 0 {
			stall = 5 * time.Second
		}
		select {
		case <-time.After(stall):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case Err5xx:
		t.inj.count(kindIndex(KindHTTP5xx))
		return synthesized503(req), nil
	case Truncate:
		t.inj.count(kindIndex(KindHTTPTrunc))
		resp, err := t.base.RoundTrip(req)
		if err != nil || resp.Body == nil {
			return resp, err
		}
		// Cut the body at half its announced length (or after one byte
		// when unknown): the reader sees a mid-stream unexpected EOF,
		// exactly what a reset origin connection produces.
		cut := int64(1)
		if resp.ContentLength > 1 {
			cut = resp.ContentLength / 2
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: cut}
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

func synthesized503(req *http.Request) *http.Response {
	body := "faultnet: injected 503"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody yields the first remaining bytes then fails with
// io.ErrUnexpectedEOF, closing the underlying body so the connection is
// not reused with stale bytes in flight.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
	failed    bool
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		if !t.failed {
			t.failed = true
			// The injected truncation is the error being delivered; the
			// underlying body's close error is noise beside it.
			_ = t.rc.Close()
		}
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended before the cut: still report the truncation
		// the schedule called for.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }

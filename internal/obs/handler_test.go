package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one instrument of every kind, using
// binary-exact observation values so the shortest-float rendering is stable.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("demo_requests_total", "Total requests.", L("proxy", "a")).Add(3)
	reg.Gauge("demo_inflight", "In-flight requests.", nil).Set(2)
	h := reg.Histogram("demo_seconds", "Request latency.", nil, []float64{0.25, 1, 4})
	for _, v := range []float64{0.0625, 0.5, 5} {
		h.Observe(v)
	}
	return reg
}

const goldenExposition = `# HELP demo_inflight In-flight requests.
# TYPE demo_inflight gauge
demo_inflight 2
# HELP demo_requests_total Total requests.
# TYPE demo_requests_total counter
demo_requests_total{proxy="a"} 3
# HELP demo_seconds Request latency.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.25"} 1
demo_seconds_bucket{le="1"} 2
demo_seconds_bucket{le="4"} 2
demo_seconds_bucket{le="+Inf"} 3
demo_seconds_sum 5.5625
demo_seconds_count 3
`

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf strings.Builder
	goldenRegistry().WritePrometheus(&buf)
	if got := buf.String(); got != goldenExposition {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, goldenExposition)
	}
}

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(NewHandler(goldenRegistry(), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != goldenExposition {
		t.Errorf("/metrics body mismatch\n--- got ---\n%s", body)
	}
}

func TestHandlerDebugVars(t *testing.T) {
	srv := httptest.NewServer(NewHandler(goldenRegistry(), nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if got := vars[`demo_requests_total{proxy="a"}`]; got != float64(3) {
		t.Errorf("demo_requests_total = %v, want 3", got)
	}
	hist, ok := vars["demo_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("demo_seconds missing: %v", vars)
	}
	if hist["count"] != float64(3) || hist["sum"] != 5.5625 {
		t.Errorf("demo_seconds summary = %v", hist)
	}
}

func TestHandlerHealthz(t *testing.T) {
	health := NewHealth()
	srv := httptest.NewServer(NewHandler(NewRegistry(), health))
	defer srv.Close()

	get := func() (int, map[string]any) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("/healthz not JSON: %v", err)
		}
		return resp.StatusCode, out
	}

	if code, out := get(); code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("no peers: status %d %v, want 200 ok", code, out)
	}
	health.SetPeer("peer1", true)
	health.SetPeer("peer2", false)
	code, out := get()
	if code != http.StatusServiceUnavailable || out["status"] != "degraded" {
		t.Fatalf("with a down peer: status %d %v, want 503 degraded", code, out)
	}
	health.SetPeer("peer2", true)
	if code, out := get(); code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("peer recovered: status %d %v, want 200 ok", code, out)
	}
}

func TestHandlerHealthzBuildInfo(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Build BuildInfo `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	// Test binaries always carry module build info.
	if out.Build.GoVersion == "" {
		t.Errorf("build.go_version missing: %+v", out.Build)
	}
	if out.Build.Path != "summarycache" {
		t.Errorf("build.path = %q, want summarycache", out.Build.Path)
	}
	if got := ReadBuildInfo(); got != out.Build {
		t.Errorf("handler build %+v != ReadBuildInfo() %+v", out.Build, got)
	}
}

func TestHandlerMounts(t *testing.T) {
	extra := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("mounted"))
	})
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil,
		Mount{Pattern: "/debug/traces", Handler: extra}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "mounted" {
		t.Fatalf("mounted handler: status %d body %q", resp.StatusCode, body)
	}
	// The built-in endpoints still work alongside the mount.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/metrics alongside mount: status %d", resp2.StatusCode)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}

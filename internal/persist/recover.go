package persist

import (
	"errors"
	"os"
	"sort"

	"summarycache/internal/core"
	"summarycache/internal/delta"
	"summarycache/internal/lru"
)

// RecoveryStats describes what one Recover call found and how it
// reconciled the snapshot with the journal.
type RecoveryStats struct {
	// Recovered is true when any snapshot or journal state was loaded.
	Recovered bool
	// SnapshotGen is the generation of the snapshot that validated
	// (0 when recovery started from an empty snapshot).
	SnapshotGen uint64
	// SnapshotEntries is the entry count in the loaded snapshot;
	// Entries the count after journal reconciliation.
	SnapshotEntries int
	Entries         int
	// SnapshotsSkipped counts newer snapshot files that failed
	// validation (torn or corrupt) and were passed over.
	SnapshotsSkipped int
	// JournalRecords counts records replayed across all journals.
	JournalRecords int
	// LostInserts are journal inserts with no snapshot body to restore —
	// documents cached after the last checkpoint. They are not restored
	// and not claimed in the directory (a safe under-claim).
	LostInserts int
	// StaleVersions are snapshot entries whose journal shows a later
	// version; the stale body is dropped for refetch.
	StaleVersions int
	// ReplayedEvicts are journal evictions applied to snapshot entries.
	ReplayedEvicts int
	// DoubleEvicts are journal evictions of keys not present — the
	// overlap window's double-applies, absorbed as counted no-ops.
	DoubleEvicts int
	// TornTail is true when a journal ended mid-frame or with a corrupt
	// frame — the expected shape of a crash; replay keeps the valid
	// prefix.
	TornTail bool
}

// Recovered is the state a caller installs after a warm restart.
type Recovered struct {
	// Entries is the reconciled cache content, most recently used first —
	// feed it to lru.Cache.Restore.
	Entries []lru.Entry
	// Directory is the counting-filter state blob from the snapshot (nil
	// when none was captured). Restore it with Directory.RestoreState,
	// then apply Removed; if geometry changed, rebuild by inserting the
	// restored keys instead.
	Directory []byte
	// Removed lists keys that ARE claimed in the Directory blob but are
	// NOT in Entries (journal evictions and stale versions): apply
	// Directory.Remove for each so the restored filter matches the
	// restored cache. The underflow guard absorbs any overlap-window
	// double-removal.
	Removed []string
	// Replicas are the persisted peer summaries (PeerTable.RestoreReplica).
	Replicas []core.ReplicaState
	// Stats is the reconciliation accounting, also retained on the store
	// (Store.Recovery).
	Stats RecoveryStats
}

// restoredEntry tracks one key through replay with its recency sequence
// (higher = more recent).
type restoredEntry struct {
	e   lru.Entry
	seq int
}

// Recover loads the newest valid snapshot and replays every journal of
// that generation and newer, in generation order. It returns best-effort
// state: corrupt files are skipped or truncated at the first bad frame,
// never fatal — an unreadable persistence directory yields an empty
// Recovered, not a dead proxy. Call it once, after Open and before the
// first Checkpoint.
func (s *Store) Recover() (*Recovered, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jf != nil {
		return nil, errors.New("persist: Recover must precede journal writes")
	}
	snaps, jrnls, err := s.scan()
	if err != nil {
		return nil, err
	}
	out := &Recovered{}
	st := &out.Stats

	// Newest snapshot that validates end-to-end wins; newer ones that
	// fail (torn by a crash mid-checkpoint) are skipped — their journal
	// chain starts at the previous snapshot anyway.
	var base SnapshotData
	var baseGen uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		gen := snaps[i]
		img, rerr := os.ReadFile(s.path(snapPrefix, gen))
		if rerr != nil {
			st.SnapshotsSkipped++
			s.log.Warn("snapshot unreadable", "gen", gen, "err", rerr)
			continue
		}
		data, derr := decodeSnapshot(img, gen)
		if derr != nil {
			st.SnapshotsSkipped++
			s.log.Warn("snapshot invalid", "gen", gen, "err", derr)
			continue
		}
		base = data
		baseGen = gen
		st.Recovered = true
		break
	}
	st.SnapshotGen = baseGen
	st.SnapshotEntries = len(base.Entries)
	out.Directory = base.Directory
	out.Replicas = base.Replicas

	// Seed the replay table from the snapshot: MRU-first file order gets
	// descending sequence numbers, journal activity appends above them.
	entries := make(map[string]*restoredEntry, len(base.Entries))
	order := make([]*restoredEntry, 0, len(base.Entries))
	seq := 0
	for i := len(base.Entries) - 1; i >= 0; i-- { // LRU first: lowest seq
		seq++
		re := &restoredEntry{e: base.Entries[i], seq: seq}
		entries[re.e.Key] = re
		order = append(order, re)
	}
	removed := map[string]bool{}

	for _, gen := range jrnls {
		if gen < baseGen {
			continue
		}
		s.replayJournal(gen, entries, removed, &seq, st)
	}

	// Materialize MRU-first, skipping tombstoned keys.
	sort.Slice(order, func(i, j int) bool { return order[i].seq > order[j].seq })
	for _, re := range order {
		if entries[re.e.Key] != re {
			continue // evicted, superseded, or re-inserted under a newer seq
		}
		out.Entries = append(out.Entries, re.e)
	}
	st.Entries = len(out.Entries)
	for k := range removed {
		out.Removed = append(out.Removed, k)
	}
	sort.Strings(out.Removed)
	if st.JournalRecords > 0 {
		st.Recovered = true
	}
	s.recovered = *st
	if st.Recovered {
		s.log.Info("recovered persisted state",
			"snapshot_gen", baseGen, "snapshot_entries", st.SnapshotEntries,
			"entries", st.Entries, "journal_records", st.JournalRecords,
			"lost_inserts", st.LostInserts, "double_evicts", st.DoubleEvicts,
			"torn_tail", st.TornTail)
	}
	return out, nil
}

// replayJournal folds one journal generation into the replay table,
// stopping at the first torn or corrupt frame.
func (s *Store) replayJournal(gen uint64, entries map[string]*restoredEntry,
	removed map[string]bool, seq *int, st *RecoveryStats) {
	img, err := os.ReadFile(s.path(jrnlPrefix, gen))
	if err != nil {
		s.log.Warn("journal unreadable", "gen", gen, "err", err)
		return
	}
	payload, rest, err := delta.NextFrame(img)
	if err != nil || payload == nil {
		if err != nil {
			st.TornTail = true
		}
		return
	}
	if _, herr := parseHeader(payload, frameJournalHdr, jrnlMagic); herr != nil {
		s.log.Warn("journal header invalid", "gen", gen, "err", herr)
		return
	}
	for {
		payload, rest, err = delta.NextFrame(rest)
		if err != nil {
			// Torn or corrupt tail: keep the valid prefix, stop here.
			st.TornTail = true
			return
		}
		if payload == nil {
			return
		}
		rec, derr := delta.DecodeJournalRecord(payload)
		if derr != nil {
			st.TornTail = true
			return
		}
		st.JournalRecords++
		switch rec.Op {
		case delta.JournalInsert:
			*seq++
			if re, ok := entries[rec.Key]; ok {
				if re.e.Version == rec.Version {
					// Overlap-window confirmation (or a re-insert after an
					// eviction also in this journal): the snapshot body is
					// this version; just refresh recency.
					re.seq = *seq
					delete(removed, rec.Key)
					continue
				}
				// The document changed version after the snapshot; its
				// persisted body is stale. Drop it for refetch and take its
				// claim out of the restored filter.
				st.StaleVersions++
				delete(entries, rec.Key)
				removed[rec.Key] = true
				continue
			}
			// Inserted after the snapshot was captured: no body anywhere on
			// disk. Not restored, not claimed — a safe under-claim the next
			// real fetch repairs.
			st.LostInserts++
		case delta.JournalEvict:
			if _, ok := entries[rec.Key]; ok {
				delete(entries, rec.Key)
				removed[rec.Key] = true
				st.ReplayedEvicts++
			} else {
				st.DoubleEvicts++
			}
		}
	}
}

package summarycache

// This file is the public face of the library: the types and constructors
// a downstream user needs, aliased from the internal packages so the
// import graph stays one line — import "summarycache" — while the
// implementation keeps its per-subsystem layout.

import (
	"io"
	"net/http"

	"summarycache/internal/analysis"
	"summarycache/internal/bench"
	"summarycache/internal/bloom"
	"summarycache/internal/core"
	"summarycache/internal/experiments"
	"summarycache/internal/faultnet"
	"summarycache/internal/hashing"
	"summarycache/internal/httpproxy"
	"summarycache/internal/icp"
	"summarycache/internal/lru"
	"summarycache/internal/meshhealth"
	"summarycache/internal/obs"
	"summarycache/internal/origin"
	"summarycache/internal/perfwatch"
	"summarycache/internal/persist"
	"summarycache/internal/sim"
	"summarycache/internal/trace"
	"summarycache/internal/tracegen"
	"summarycache/internal/tracing"
)

// --- the summary-cache protocol (internal/core) ---

// Directory maintains a proxy's own cache summary: a counting Bloom filter
// plus the journal of unpublished bit flips.
type Directory = core.Directory

// DirectoryConfig sizes a Directory.
type DirectoryConfig = core.DirectoryConfig

// PeerTable holds replicas of neighbors' summaries.
type PeerTable = core.PeerTable

// PeerHealth is the mesh-health snapshot of one peer's summary replica:
// fill ratio, estimated false-positive rate, update ages and byte counts.
type PeerHealth = core.PeerHealth

// Node is a summary-cache enhanced ICP endpoint.
type Node = core.Node

// NodeConfig configures a Node.
type NodeConfig = core.NodeConfig

// NodeStats counts a Node's protocol activity.
type NodeStats = core.NodeStats

// HealthConfig parameterizes Node.StartHealthChecks.
type HealthConfig = core.HealthConfig

// Recommendation is the paper's §V-E recommended configuration.
type Recommendation = core.Recommendation

// NewDirectory builds a directory summary.
func NewDirectory(cfg DirectoryConfig) (*Directory, error) { return core.NewDirectory(cfg) }

// NewPeerTable creates an empty peer-summary table.
func NewPeerTable() *PeerTable { return core.NewPeerTable() }

// NewNode opens a summary-cache ICP endpoint.
func NewNode(cfg NodeConfig) (*Node, error) { return core.NewNode(cfg) }

// Recommend derives the paper's recommended configuration for a cache.
func Recommend(cacheBytes, avgDocBytes int64, requestsPerSecond, missRatio float64) (Recommendation, error) {
	return core.Recommend(cacheBytes, avgDocBytes, requestsPerSecond, missRatio)
}

// --- Bloom filters (internal/bloom) ---

// Filter is a plain Bloom filter (a peer-summary replica).
type Filter = bloom.Filter

// CountingFilter is the paper's counting Bloom filter.
type CountingFilter = bloom.CountingFilter

// Flip is one absolute set/clear bit record.
type Flip = bloom.Flip

// HashSpec describes a Bloom hash family (MD5 bit groups).
type HashSpec = hashing.Spec

// DefaultHashSpec is the paper's 4 × 32-bit MD5 configuration.
var DefaultHashSpec = hashing.DefaultSpec

// NewFilter creates a plain Bloom filter.
func NewFilter(bits uint64, spec HashSpec) (*Filter, error) { return bloom.NewFilter(bits, spec) }

// MustNewFilter is NewFilter, panicking on error.
func MustNewFilter(bits uint64, spec HashSpec) *Filter { return bloom.MustNewFilter(bits, spec) }

// NewCountingFilter creates a counting Bloom filter.
func NewCountingFilter(bits uint64, counterBits uint, spec HashSpec) (*CountingFilter, error) {
	return bloom.NewCountingFilter(bits, counterBits, spec)
}

// FalsePositiveRate returns the analytic false-positive probability for a
// filter of m bits holding n keys with k hash functions.
func FalsePositiveRate(m, n uint64, k int) float64 { return bloom.FalsePositiveRate(m, n, k) }

// FalsePositiveRateApprox is the paper's closed-form (1-e^{-nk/m})^k
// approximation of FalsePositiveRate.
func FalsePositiveRateApprox(m, n uint64, k int) float64 {
	return bloom.FalsePositiveRateApprox(m, n, k)
}

// MinFalsePositiveRate returns the false-positive probability at the
// optimal k for a filter of m bits holding n keys.
func MinFalsePositiveRate(m, n uint64) float64 { return bloom.MinFalsePositiveRate(m, n) }

// PowerBound is the paper's 0.6185^(m/n) bound on the minimum
// false-positive rate at a given load factor m/n.
func PowerBound(loadFactor float64) float64 { return bloom.PowerBound(loadFactor) }

// OptimalK returns the false-positive-minimizing number of hash functions.
func OptimalK(m, n uint64) int { return bloom.OptimalK(m, n) }

// SizeForLoadFactor returns the bit-array size for an expected entry count
// at the given load factor (bits per entry).
func SizeForLoadFactor(expectedEntries uint64, loadFactor float64) uint64 {
	return bloom.SizeForLoadFactor(expectedEntries, loadFactor)
}

// ExpectedMaxCount estimates the expected maximum counter value in a
// counting filter of m counters holding n keys with k hash functions (the
// paper's §V-C overflow analysis).
func ExpectedMaxCount(m, n uint64, k int) float64 { return bloom.ExpectedMaxCount(m, n, k) }

// CounterOverflowProbability bounds the probability that some counter
// reaches j in a counting filter of m counters, n keys, k hash functions.
func CounterOverflowProbability(m, n uint64, k, j int) float64 {
	return bloom.CounterOverflowProbability(m, n, k, j)
}

// --- the cache and the proxy (internal/lru, internal/httpproxy) ---

// Cache is the byte-budget LRU document cache.
type Cache = lru.Cache

// CacheConfig customizes a Cache.
type CacheConfig = lru.Config

// CacheEntry is one cached document.
type CacheEntry = lru.Entry

// NewCache creates a document cache from cfg; CacheConfig.Capacity must be
// positive. The cache is hash-striped across CacheConfig.Shards stripes
// (GOMAXPROCS-derived when zero) so concurrent operations on different
// keys proceed in parallel.
func NewCache(cfg CacheConfig) (*Cache, error) { return lru.NewCache(cfg) }

// MustNewCache is NewCache, panicking on error.
func MustNewCache(cfg CacheConfig) *Cache { return lru.MustNewCache(cfg) }

// CacheShardStats snapshots one cache stripe: occupancy, capacity, and
// the recency-clock and lock-contention counters behind the per-shard
// /metrics series.
type CacheShardStats = lru.ShardStats

// Proxy is a caching HTTP forward proxy with cooperative peering.
type Proxy = httpproxy.Proxy

// ProxyConfig configures a Proxy.
type ProxyConfig = httpproxy.Config

// ProxyMode selects the cooperation protocol.
type ProxyMode = httpproxy.Mode

// The cooperation modes.
const (
	ProxyModeNone  = httpproxy.ModeNone
	ProxyModeICP   = httpproxy.ModeICP
	ProxyModeSCICP = httpproxy.ModeSCICP
)

// StartProxy launches a caching proxy.
func StartProxy(cfg ProxyConfig) (*Proxy, error) { return httpproxy.Start(cfg) }

// ProxyPath is the proxy's explicit-form endpoint:
// GET /__summarycache/proxy?url=<target>.
const ProxyPath = httpproxy.ProxyPath

// --- warm-restart persistence (internal/persist) ---

// PersistConfig configures warm-restart persistence; set it on
// ProxyConfig.Persist to make a proxy recover its cache, directory
// filter, and peer replicas across restarts.
type PersistConfig = persist.Config

// PersistFsyncPolicy selects the journal durability policy.
type PersistFsyncPolicy = persist.FsyncPolicy

// The journal fsync policies: sync every append, sync on a background
// interval (the default), or leave durability to the OS.
const (
	PersistFsyncAlways   = persist.FsyncAlways
	PersistFsyncInterval = persist.FsyncInterval
	PersistFsyncNever    = persist.FsyncNever
)

// ParsePersistFsyncPolicy parses a -persist-fsync style flag value
// ("always", "interval", "never"; empty selects the default).
func ParsePersistFsyncPolicy(s string) (PersistFsyncPolicy, error) {
	return persist.ParseFsyncPolicy(s)
}

// PersistStats counts a persist store's checkpoint and journal activity.
type PersistStats = persist.Stats

// RecoveryStats describes what one warm-restart recovery found and how
// it reconciled the snapshot with the journal (Proxy.Recovery).
type RecoveryStats = persist.RecoveryStats

// ReplicaState is one persisted peer summary replica — what snapshots
// carry so a recovered node resumes with warm peer summaries.
type ReplicaState = core.ReplicaState

// CacheOnlyPath is the proxy's sibling-fetch endpoint, which never fetches
// on a miss (so sibling fetches cannot recurse).
const CacheOnlyPath = httpproxy.CacheOnlyPath

// --- the wire protocol (internal/icp) ---

// ICPMessage is one ICP datagram.
type ICPMessage = icp.Message

// ICPConfig tunes the ICP plane's pooling and batching: the depth of the
// asynchronous send ring behind DIRUPDATE transmission, and whether the
// publication path coalesces redundant same-bit flips before shipping.
// Set it on ProxyConfig.ICP; the zero value selects every default.
type ICPConfig = icp.Config

// ICPOpcode is an ICP operation code.
type ICPOpcode = icp.Opcode

// DirUpdate is the decoded ICP_OP_DIRUPDATE payload.
type DirUpdate = icp.DirUpdate

// ParseICP decodes one ICP datagram.
func ParseICP(b []byte) (ICPMessage, error) { return icp.Parse(b) }

// MaxFlipsPerMessage is the most flip records one DIRUPDATE datagram holds.
const MaxFlipsPerMessage = icp.MaxFlipsPerMessage

// SplitUpdate partitions flips into DIRUPDATE messages of at most maxFlips
// records each (MaxFlipsPerMessage when maxFlips <= 0).
func SplitUpdate(reqNum uint32, spec HashSpec, bits uint32, flips []Flip, maxFlips int) []ICPMessage {
	return icp.SplitUpdate(reqNum, spec, bits, flips, maxFlips)
}

// TCPClient maintains one persistent connection to a peer's update
// channel, reconnecting lazily after failures.
type TCPClient = icp.TCPClient

// TCPClientConfig tunes a TCPClient's dial and per-send write deadlines.
type TCPClientConfig = icp.TCPClientConfig

// TCPServer accepts persistent update-channel connections.
type TCPServer = icp.TCPServer

// DefaultDialTimeout bounds update-channel connection establishment when
// TCPClientConfig leaves DialTimeout zero.
const DefaultDialTimeout = icp.DefaultDialTimeout

// NewTCPClient prepares an update-channel client. This config form is the
// one canonical constructor (it folds in the NewTCPClientWithConfig and
// positional dial-timeout spellings of earlier revisions). A zero
// DialTimeout means DefaultDialTimeout.
func NewTCPClient(addr string, cfg TCPClientConfig) *TCPClient {
	return icp.NewTCPClient(addr, cfg)
}

// ListenTCP starts an update-channel server on addr, delivering each
// framed message to handler.
func ListenTCP(addr string, handler ICPHandler) (*TCPServer, error) {
	return icp.ListenTCP(addr, handler)
}

// ICPHandler consumes received ICP messages with their remote address.
type ICPHandler = icp.Handler

// --- deterministic fault injection (internal/faultnet) ---

// FaultScenario is a complete, replayable fault schedule: a seed plus the
// drop/delay/duplication rates for each direction of the ICP UDP path and
// the failure rates for the outbound HTTP transport. Set an injector built
// from one on ProxyConfig.Faults (or SyntheticConfig.Chaos for a whole
// benchmark mesh).
type FaultScenario = faultnet.Scenario

// FaultRates are the per-datagram UDP fault probabilities for one
// direction of a FaultScenario.
type FaultRates = faultnet.Rates

// FaultHTTPRates are the per-request fault probabilities for the HTTP
// transport wrapper.
type FaultHTTPRates = faultnet.HTTPRates

// FaultInjector instantiates a FaultScenario: a kill switch plus the
// socket and transport wrappers that inject its faults, with per-kind
// accounting.
type FaultInjector = faultnet.Injector

// NewFaultInjector instantiates a scenario. The injector starts enabled;
// SetEnabled(false) turns every wrapper into a pure passthrough (the
// "faults clear" phase of a chaos run).
func NewFaultInjector(s FaultScenario) *FaultInjector { return faultnet.New(s) }

// --- observability (internal/obs) ---

// Registry is a concurrency-safe registry of labeled counters, gauges and
// latency histograms; a whole proxy mesh may share one.
type Registry = obs.Registry

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Mount adds an extra handler to an admin endpoint built by
// NewAdminHandler.
type Mount = obs.Mount

// Health tracks component up/down state for /healthz.
type Health = obs.Health

// NewHealth creates an empty health tracker.
func NewHealth() *Health { return obs.NewHealth() }

// NewAdminHandler builds the admin endpoint: Prometheus text exposition at
// /metrics, expvar-style JSON at /debug/vars, net/http/pprof at
// /debug/pprof/, /healthz when health is non-nil, plus any extra mounts.
func NewAdminHandler(r *Registry, health *Health, mounts ...Mount) http.Handler {
	return obs.NewHandler(r, health, mounts...)
}

// RegisterRuntimeMetrics exposes Go runtime health at /metrics —
// mutex-wait seconds (runtime/metrics), goroutine count and GC cycles —
// so shard-lock contention inside the process is visible next to the
// cache's own contention counters.
func RegisterRuntimeMetrics(r *Registry) { obs.RegisterRuntimeMetrics(r) }

// --- mesh-health observability (internal/meshhealth) ---

// MeshReport is one proxy's full mesh-health view: local advertisement
// staleness, per-peer replica health and decision taxonomy, and the
// recent false decisions with trace IDs. Proxy.MeshReport builds one.
type MeshReport = meshhealth.Report

// MeshPeerReport is one peer's row in a MeshReport.
type MeshPeerReport = meshhealth.PeerReport

// PeerDecisionStats counts the paper's decision taxonomy against one
// peer: nominations, remote hits, false hits, false misses, stale hits.
type PeerDecisionStats = meshhealth.PeerStats

// FalseDecision is one recorded false hit / false miss / stale hit, with
// the trace ID when tracing sampled the request.
type FalseDecision = meshhealth.FalseDecision

// NewMeshHandler serves mesh-health reports at /debug/mesh as HTML or
// JSON (?format=json). Proxy.MeshHandler wires one to a live proxy.
func NewMeshHandler(reports func() []MeshReport) http.Handler {
	return meshhealth.NewHandler(reports)
}

// --- distributed tracing (internal/tracing) ---

// Tracer records request-scoped distributed traces across the SC-ICP mesh
// (local lookup, per-peer summary probes with decision audits, ICP
// round-trips, sibling and origin fetches) and serves them at
// /debug/traces. Set it on ProxyConfig.Tracer or NodeConfig.Tracer.
type Tracer = tracing.Tracer

// TracerConfig parameterizes a Tracer: head-sampling rate, ring-buffer
// capacity, and the metrics registry its retention counters register in.
type TracerConfig = tracing.Config

// DefaultTraceBuffer is the default trace ring-buffer capacity.
const DefaultTraceBuffer = tracing.DefaultBuffer

// TracerSink observes every span and trace completion regardless of
// sampling — set TracerConfig.Sink to a *PerfWatch to feed the per-stage
// latency decomposition and SLO engine.
type TracerSink = tracing.SpanSink

// NewTracer creates a Tracer.
func NewTracer(cfg TracerConfig) *Tracer { return tracing.New(cfg) }

// --- performance observability (internal/perfwatch) ---

// PerfWatch decomposes request latency into per-stage histograms
// (summarycache_perf_stage_seconds{stage=...}), evaluates named SLOs with
// error-budget burn rates, and captures a bounded ring of pprof profiles
// when an objective's burn trips. Wire one Watch as both
// TracerConfig.Sink (span-level stages, SLO stream) and ProxyConfig.Perf
// (sub-span stages: LRU ops, DIRUPDATE codec, per-reply ICP RTT); serve
// its SLOHandler at /debug/slo and PerfHandler at /debug/perf. A nil
// *PerfWatch is a valid disabled watch.
type PerfWatch = perfwatch.Watch

// PerfConfig parameterizes a PerfWatch.
type PerfConfig = perfwatch.Config

// PerfObjective is one named service-level objective: a latency ceiling,
// an error-rate budget, or a ratio of caller-supplied counters (e.g.
// false hits over client requests).
type PerfObjective = perfwatch.Objective

// SLOStatus is one objective's state at the last evaluation — burn rate,
// breach flag, window and lifetime counts — as served at /debug/slo.
type SLOStatus = perfwatch.SLOStatus

// PerfStageSummary is one row of the per-stage latency breakdown.
type PerfStageSummary = perfwatch.StageSummary

// PerfCaptureConfig configures anomaly-triggered pprof capture: ring
// size, CPU-profile duration, and the rate-limit interval.
type PerfCaptureConfig = perfwatch.CaptureConfig

// PerfCapture is one captured profile set in the /debug/perf ring.
type PerfCapture = perfwatch.Capture

// PerfObjective kinds: latency thresholds, outcome error rates, and
// counter ratios.
const (
	PerfKindLatency   = perfwatch.KindLatency
	PerfKindErrorRate = perfwatch.KindErrorRate
	PerfKindRatio     = perfwatch.KindRatio
)

// NewPerfWatch creates a PerfWatch.
func NewPerfWatch(cfg PerfConfig) *PerfWatch { return perfwatch.New(cfg) }

// --- the synthetic origin farm (internal/origin) ---

// OriginServer is the synthetic Web-server farm of the paper's benchmarks:
// it delays each reply by a configured latency and answers with the body
// size encoded in the request URL.
type OriginServer = origin.Server

// OriginConfig parameterizes an OriginServer.
type OriginConfig = origin.Config

// StartOrigin launches a synthetic origin server.
func StartOrigin(cfg OriginConfig) (*OriginServer, error) { return origin.Start(cfg) }

// DocURL builds a synthetic-origin document URL carrying the document's
// path, size and version.
func DocURL(base, path string, size, version int64) string {
	return origin.DocURL(base, path, size, version)
}

// --- request traces (internal/trace) ---

// TraceRequest is one HTTP request record in a trace.
type TraceRequest = trace.Request

// TraceStats is the per-trace statistics of the paper's Table I.
type TraceStats = trace.Stats

// TraceWriter writes the line-oriented trace format.
type TraceWriter = trace.Writer

// TraceBinaryWriter writes the compact binary trace format.
type TraceBinaryWriter = trace.BinaryWriter

// CacheableLimit is the paper's 250 KB document cacheability limit.
const CacheableLimit = trace.CacheableLimit

// NewTraceWriter creates a line-oriented trace writer.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewTraceBinaryWriter creates a binary trace writer.
func NewTraceBinaryWriter(w io.Writer) *TraceBinaryWriter { return trace.NewBinaryWriter(w) }

// ReadTraceAuto reads a whole trace, auto-detecting the line or binary
// format.
func ReadTraceAuto(r io.Reader) ([]TraceRequest, error) { return trace.ReadAllAuto(r) }

// ComputeTraceStats derives a trace's Table I statistics.
func ComputeTraceStats(name string, reqs []TraceRequest) TraceStats {
	return trace.ComputeStats(name, reqs)
}

// --- synthetic trace generation (internal/tracegen) ---

// TracePreset names one of the five paper traces whose statistical shape
// tracegen reproduces.
type TracePreset = tracegen.Preset

// The five paper-trace presets.
const (
	PresetDEC      = tracegen.DEC
	PresetUCB      = tracegen.UCB
	PresetUPisa    = tracegen.UPisa
	PresetQuestnet = tracegen.Questnet
	PresetNLANR    = tracegen.NLANR
)

// TraceGenConfig parameterizes synthetic trace generation.
type TraceGenConfig = tracegen.Config

// TracePresets lists the available presets.
func TracePresets() []TracePreset { return tracegen.Presets() }

// GenerateTrace synthesizes a request trace from an explicit config.
func GenerateTrace(cfg TraceGenConfig) ([]TraceRequest, error) { return tracegen.Generate(cfg) }

// GeneratePreset synthesizes a request trace with the statistical shape of
// a paper trace, scaled by scale in (0, 1].
func GeneratePreset(p TracePreset, scale float64) ([]TraceRequest, TraceGenConfig, error) {
	return tracegen.GeneratePreset(p, scale)
}

// --- the trace-driven simulator (internal/sim) ---

// SimConfig parameterizes one simulator run.
type SimConfig = sim.Config

// SimResult reports a run's hit ratios, error ratios and message costs.
type SimResult = sim.Result

// SimScheme selects the cooperation model of the paper's §III.
type SimScheme = sim.Scheme

// The cooperation schemes (Fig. 1).
const (
	SimNoSharing         = sim.NoSharing
	SimSimpleSharing     = sim.SimpleSharing
	SimSingleCopySharing = sim.SingleCopySharing
	SimGlobalCache       = sim.GlobalCache
	SimGlobalCacheShrunk = sim.GlobalCacheShrunk
)

// SimSummaryKind selects how simulated proxies learn peers' contents.
type SimSummaryKind = sim.SummaryKind

// The summary representations (Figs. 2, 5-8; Table III).
const (
	SummaryOracle         = sim.Oracle
	SummaryICP            = sim.ICP
	SummaryExactDirectory = sim.ExactDirectory
	SummaryServerName     = sim.ServerName
	SummaryBloom          = sim.Bloom
	SummaryBloomDigest    = sim.BloomDigest
)

// SimSummaryConfig tunes the simulated summary (kind, load factor, counter
// bits, update threshold, hash spec).
type SimSummaryConfig = sim.SummaryConfig

// SimMessageModel prices inter-proxy messages and bytes.
type SimMessageModel = sim.MessageModel

// PaperMessageModel is the message-cost model of the paper's evaluation.
var PaperMessageModel = sim.PaperMessageModel

// RunSim replays a request trace through the simulator.
func RunSim(cfg SimConfig, reqs []TraceRequest) (SimResult, error) { return sim.Run(cfg, reqs) }

// --- the paper's figures and tables (internal/experiments) ---

// TraceSet bundles a trace with its Table I statistics and group count.
type TraceSet = experiments.TraceSet

// LoadTraceSet generates (or loads) the named preset trace at scale and
// bundles it with its statistics.
var LoadTraceSet = experiments.Load

// LoadAllTraceSets loads every preset at scale.
var LoadAllTraceSets = experiments.LoadAll

// TraceSetFromRequests bundles explicit requests into a TraceSet.
var TraceSetFromRequests = experiments.LoadFromRequests

// TableI returns a trace's Table I row.
var TableI = experiments.TableI

// Fig1Row is one (scheme, cache fraction) point of Fig. 1.
type Fig1Row = experiments.Fig1Row

// Fig1 sweeps cooperative-caching schemes across cache sizes (Fig. 1).
var Fig1 = experiments.Fig1

// Fig1Schemes is the paper's Fig. 1 scheme list.
var Fig1Schemes = experiments.Fig1Schemes

// Fig1CacheFracs is the paper's Fig. 1 cache-fraction sweep.
var Fig1CacheFracs = experiments.Fig1CacheFracs

// Fig1CSV writes Fig. 1 rows as CSV.
var Fig1CSV = experiments.Fig1CSV

// Fig2Row is one update-threshold point of Fig. 2.
type Fig2Row = experiments.Fig2Row

// Fig2 sweeps the summary update threshold (Fig. 2).
var Fig2 = experiments.Fig2

// Fig2Thresholds is the paper's Fig. 2 threshold sweep.
var Fig2Thresholds = experiments.Fig2Thresholds

// Fig2CSV writes Fig. 2 rows as CSV.
var Fig2CSV = experiments.Fig2CSV

// SummaryRow is one summary representation's accuracy and cost (Figs. 5-8,
// Table III).
type SummaryRow = experiments.SummaryRow

// SummaryVariant names one summary representation under test.
type SummaryVariant = experiments.SummaryVariant

// PaperSummaryVariants is the paper's summary-comparison lineup.
var PaperSummaryVariants = experiments.PaperSummaryVariants

// SummaryComparison evaluates summary representations on one trace.
var SummaryComparison = experiments.SummaryComparison

// SummaryCSV writes summary-comparison rows as CSV.
var SummaryCSV = experiments.SummaryCSV

// ScaleRow is one proxy-count point of the §V-F scalability projection.
type ScaleRow = experiments.ScaleRow

// Scalability projects summary memory and message costs across mesh sizes.
var Scalability = experiments.Scalability

// ScaleCSV writes scalability rows as CSV.
var ScaleCSV = experiments.ScaleCSV

// AmortRow is one batch-size point of the update-amortization sweep.
type AmortRow = experiments.AmortRow

// UpdateAmortization sweeps DIRUPDATE batching (the packet-fill rule).
var UpdateAmortization = experiments.UpdateAmortization

// AmortCSV writes amortization rows as CSV.
var AmortCSV = experiments.AmortCSV

// DigestRow is one threshold point of the digest-vs-delta comparison.
type DigestRow = experiments.DigestRow

// DigestVsDelta compares full-digest and bit-flip-delta propagation.
var DigestVsDelta = experiments.DigestVsDelta

// DigestCSV writes digest-vs-delta rows as CSV.
var DigestCSV = experiments.DigestCSV

// HashKRow is one hash-function-count point of the k sweep.
type HashKRow = experiments.HashKRow

// HashKSweep sweeps the number of Bloom hash functions.
var HashKSweep = experiments.HashKSweep

// HashKCSV writes k-sweep rows as CSV.
var HashKCSV = experiments.HashKCSV

// CounterRow is one counter-width point of the §V-C sweep.
type CounterRow = experiments.CounterRow

// CounterWidthSweep sweeps counting-filter counter widths.
var CounterWidthSweep = experiments.CounterWidthSweep

// CounterCSV writes counter-width rows as CSV.
var CounterCSV = experiments.CounterCSV

// LoadFactorRow is one bits-per-document point of the load-factor sweep.
type LoadFactorRow = experiments.LoadFactorRow

// LoadFactorSweep sweeps the summary load factor.
var LoadFactorSweep = experiments.LoadFactorSweep

// LoadFactorCSV writes load-factor rows as CSV.
var LoadFactorCSV = experiments.LoadFactorCSV

// HierarchyRow is one configuration of the §VIII hierarchy experiment.
type HierarchyRow = experiments.HierarchyRow

// Hierarchy evaluates summary cache in a two-level hierarchy.
var Hierarchy = experiments.Hierarchy

// HierarchyCSV writes hierarchy rows as CSV.
var HierarchyCSV = experiments.HierarchyCSV

// TableICSV writes every trace's Table I row as CSV.
var TableICSV = experiments.TableICSV

// --- the networked benchmark harness (internal/bench) ---

// SyntheticConfig parameterizes a Table II-style synthetic benchmark run.
type SyntheticConfig = bench.SyntheticConfig

// ReplayConfig parameterizes a trace-replay benchmark run (Tables IV/V).
type ReplayConfig = bench.ReplayConfig

// BenchResult is one benchmark run's measurements.
type BenchResult = bench.Result

// Assignment selects how trace requests map onto client workers.
type Assignment = bench.Assignment

// The two replay modes of the paper's §VII.
const (
	ClientBound = bench.ClientBound
	RoundRobin  = bench.RoundRobin
)

// RunSynthetic executes one synthetic benchmark run on loopback.
func RunSynthetic(cfg SyntheticConfig) (BenchResult, error) { return bench.RunSynthetic(cfg) }

// RunReplay executes one trace-replay benchmark run on loopback.
func RunReplay(cfg ReplayConfig) (BenchResult, error) { return bench.RunReplay(cfg) }

// MicroConfig parameterizes the hot-path microbenchmarks.
type MicroConfig = bench.MicroConfig

// MicroResult is the microbenchmark report (the BENCH_PR3.json payload).
type MicroResult = bench.MicroResult

// RunMicro executes the concurrent-load microbenchmarks: the sharded LRU
// and lock-free summary probes against frozen single-lock baselines, plus
// SC-ICP mesh throughput.
func RunMicro(cfg MicroConfig) (MicroResult, error) { return bench.RunMicro(cfg) }

// MicroDiff is a scenario-by-scenario comparison of two microbenchmark
// runs (cmd/proxybench -benchdiff).
type MicroDiff = bench.MicroDiff

// MicroDelta is one scenario's old-vs-new comparison in a MicroDiff.
type MicroDelta = bench.MicroDelta

// DiffMicro pairs two runs' scenarios by name; scenarios present in only
// one run are reported, not dropped.
func DiffMicro(old, new MicroResult) MicroDiff { return bench.DiffMicro(old, new) }

// LoadMicroResult reads a committed BENCH_*.json microbenchmark report.
func LoadMicroResult(path string) (MicroResult, error) { return bench.LoadMicroResult(path) }

// LatestBenchFile returns the lexically last BENCH_*.json in dir — the
// most recent committed baseline under the BENCH_PR<n>.json convention —
// skipping any file whose base name is in exclude.
func LatestBenchFile(dir string, exclude ...string) (string, error) {
	return bench.LatestBenchFile(dir, exclude...)
}

// --- static analysis (internal/analysis, cmd/sclint) ---

// LintFinding is one diagnostic from the project's own analyzer; its
// String form is the canonical "file:line: [rule] message".
type LintFinding = analysis.Finding

// The analyzer's rule names, for -rules style filtering and for matching
// LintFinding.Rule. LintRuleLintDirective is the implicit rule that
// flags malformed //lint:ignore directives. The last three are the
// concurrency-safety suite built on the cross-package summary layer:
// lock-order cycles, goroutines without a shutdown path, and decoder
// borrows escaping their handler.
const (
	LintRuleAtomicMixing       = analysis.RuleAtomicMixing
	LintRuleDeterminism        = analysis.RuleDeterminism
	LintRuleStatsDrift         = analysis.RuleStatsDrift
	LintRuleUncheckedClose     = analysis.RuleUncheckedClose
	LintRuleStrayPrinting      = analysis.RuleStrayPrinting
	LintRuleLintDirective      = analysis.RuleLintDirective
	LintRuleLockOrder          = analysis.RuleLockOrder
	LintRuleGoroutineLifecycle = analysis.RuleGoroutineLifecycle
	LintRuleBorrowEscape       = analysis.RuleBorrowEscape
)

// LintPackages loads every non-test package under dir (a module root or
// any directory tree) and runs the full rule suite — the programmatic
// form of `go run ./cmd/sclint ./...`. A nil error with a non-empty
// slice means the tree has findings; suppressions have already been
// applied.
func LintPackages(dir string) ([]LintFinding, error) { return analysis.LintDir(dir) }

package perfwatch

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// wantJSON applies the repository's debug-handler content negotiation:
// ?format=json or an Accept header naming application/json.
func wantJSON(req *http.Request) bool {
	return req.URL.Query().Get("format") == "json" ||
		strings.Contains(req.Header.Get("Accept"), "application/json")
}

// sloView is the JSON document /debug/slo serves.
type sloView struct {
	EvaluatedAt time.Time      `json:"evaluated_at"`
	Objectives  []SLOStatus    `json:"objectives"`
	Stages      []StageSummary `json:"stages"`
}

// SLOHandler serves the SLO dashboard, meant to be mounted at /debug/slo
// beside /debug/mesh:
//
//	GET /debug/slo              HTML objective + stage tables
//	GET /debug/slo?format=json  the same as JSON
//
// It shows the most recent evaluation (the Run loop's window), never
// evaluating on scrape — a dashboard refresh must not shrink the windows
// the burn rates are computed over.
func (w *Watch) SLOHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		statuses, when := w.Status()
		v := sloView{EvaluatedAt: when, Objectives: statuses, Stages: w.Stages()}
		if wantJSON(req) {
			rw.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(v)
			return
		}
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeSLOHTML(rw, v)
	})
}

func writeSLOHTML(w http.ResponseWriter, v sloView) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>slo</title><style>
body{font-family:monospace;margin:1.5em}
table{border-collapse:collapse;margin:0.5em 0 1.5em}
th,td{border:1px solid #999;padding:2px 8px;text-align:right}
th{background:#eee}
td.l,th.l{text-align:left}
.bad{color:#b00;font-weight:bold}
.dim{color:#777}
</style></head><body><h1>service-level objectives</h1>
`)
	fmt.Fprintf(w, `<p class="dim">window closed %s; burn rate = window bad fraction / error budget (1 = budget consumed as fast as it accrues)</p>`,
		html.EscapeString(v.EvaluatedAt.Format(time.RFC3339)))
	fmt.Fprint(w, `<table><tr><th class="l">objective</th><th class="l">kind</th><th>threshold</th><th>budget</th><th>window bad/total</th><th>bad fraction</th><th>burn</th><th>breached</th><th>breaches</th><th>lifetime bad/total</th></tr>`)
	for _, s := range v.Objectives {
		thr := "—"
		if s.ThresholdSeconds > 0 {
			thr = time.Duration(s.ThresholdSeconds * float64(time.Second)).String()
		}
		breached := "no"
		if s.Breached {
			breached = `<span class="bad">YES</span>`
		}
		burn := fmt.Sprintf("%.3f", s.BurnRate)
		if s.BurnRate >= 1 {
			burn = `<span class="bad">` + burn + `</span>`
		}
		fmt.Fprintf(w,
			`<tr><td class="l">%s</td><td class="l">%s</td><td>%s</td><td>%.4f</td><td>%d/%d</td><td>%.4f</td><td>%s</td><td>%s</td><td>%d</td><td>%d/%d</td></tr>`,
			html.EscapeString(s.Name), html.EscapeString(s.Kind), thr, s.Budget,
			s.WindowBad, s.WindowTotal, s.BadFraction, burn, breached, s.Breaches,
			s.TotalBad, s.TotalEvents)
	}
	fmt.Fprint(w, "</table>\n")

	fmt.Fprint(w, `<h2>latency by stage</h2><table><tr><th class="l">stage</th><th>count</th><th>total</th><th>p50</th><th>p99</th></tr>`)
	for _, s := range v.Stages {
		fmt.Fprintf(w, `<tr><td class="l">%s</td><td>%d</td><td>%.3fs</td><td>%s</td><td>%s</td></tr>`,
			html.EscapeString(s.Stage), s.Count, s.Sum,
			fmtSeconds(s.P50), fmtSeconds(s.P99))
	}
	fmt.Fprint(w, "</table>\n</body></html>\n")
}

func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// captureView is one ring entry in the /debug/perf listing; profile bytes
// are linked, not inlined.
type captureView struct {
	Seq        int               `json:"seq"`
	Reason     string            `json:"reason"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Err        string            `json:"error,omitempty"`
	Profiles   map[string]int    `json:"profile_bytes"`
	Links      map[string]string `json:"links"`
}

// PerfHandler serves the anomaly-triggered capture ring, meant to be
// mounted at /debug/perf:
//
//	GET /debug/perf                           HTML capture listing
//	GET /debug/perf?format=json               the same as JSON
//	GET /debug/perf?capture=3&profile=cpu     raw pprof bytes of one profile
//
// Raw profiles feed straight into `go tool pprof <url>`.
func (w *Watch) PerfHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		c := w.Capturer()
		caps := c.Captures()
		if seqStr := req.URL.Query().Get("capture"); seqStr != "" {
			seq, err := strconv.Atoi(seqStr)
			name := req.URL.Query().Get("profile")
			if err != nil || name == "" {
				http.Error(rw, "want ?capture=<seq>&profile=<cpu|heap|mutex|block>", http.StatusBadRequest)
				return
			}
			for _, cp := range caps {
				if cp.Seq != seq {
					continue
				}
				raw, ok := cp.Profiles[name]
				if !ok {
					break
				}
				rw.Header().Set("Content-Type", "application/octet-stream")
				rw.Header().Set("Content-Disposition",
					fmt.Sprintf(`attachment; filename="capture%d-%s.pprof"`, seq, name))
				rw.Write(raw)
				return
			}
			http.Error(rw, "no such capture/profile", http.StatusNotFound)
			return
		}
		views := make([]captureView, 0, len(caps))
		for _, cp := range caps {
			v := captureView{
				Seq:        cp.Seq,
				Reason:     cp.Reason,
				Start:      cp.Start,
				DurationMS: cp.DurationMS,
				Err:        cp.Err,
				Profiles:   make(map[string]int, len(cp.Profiles)),
				Links:      make(map[string]string, len(cp.Profiles)),
			}
			for name, raw := range cp.Profiles {
				v.Profiles[name] = len(raw)
				v.Links[name] = fmt.Sprintf("/debug/perf?capture=%d&profile=%s", cp.Seq, name)
			}
			views = append(views, v)
		}
		if wantJSON(req) {
			rw.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(views)
			return
		}
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		writePerfHTML(rw, views, c != nil)
	})
}

func writePerfHTML(w http.ResponseWriter, views []captureView, enabled bool) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>perf captures</title><style>
body{font-family:monospace;margin:1.5em}
table{border-collapse:collapse;margin:0.5em 0 1.5em}
th,td{border:1px solid #999;padding:2px 8px;text-align:right}
th{background:#eee}
td.l,th.l{text-align:left}
.dim{color:#777}
</style></head><body><h1>anomaly-triggered profile captures</h1>
`)
	if !enabled {
		fmt.Fprint(w, `<p class="dim">capture disabled (-perf-profile-capture off)</p></body></html>`)
		return
	}
	if len(views) == 0 {
		fmt.Fprint(w, `<p class="dim">no captures yet — the ring fills when an SLO burn threshold trips</p></body></html>`)
		return
	}
	fmt.Fprint(w, `<table><tr><th>seq</th><th class="l">reason</th><th class="l">start</th><th>took</th><th class="l">profiles</th></tr>`)
	for _, v := range views {
		names := make([]string, 0, len(v.Links))
		for name := range v.Links {
			names = append(names, name)
		}
		sort.Strings(names)
		links := make([]string, 0, len(names))
		for _, name := range names {
			links = append(links, fmt.Sprintf(`<a href="%s">%s</a> (%d B)`,
				html.EscapeString(v.Links[name]), html.EscapeString(name), v.Profiles[name]))
		}
		fmt.Fprintf(w, `<tr><td>%d</td><td class="l">%s</td><td class="l">%s</td><td>%.0fms</td><td class="l">%s</td></tr>`,
			v.Seq, html.EscapeString(v.Reason),
			html.EscapeString(v.Start.Format(time.RFC3339)), v.DurationMS,
			strings.Join(links, " "))
	}
	fmt.Fprint(w, "</table>\n</body></html>\n")
}

// Command simulate regenerates the paper's trace-driven results: Table I
// (trace statistics), Figure 1 (benefit of cache sharing), Figure 2
// (update-delay impact), Figures 5–8 and Table III (summary
// representations), the §V-F scalability extrapolation, the design-choice
// ablations, and the parent/child hierarchy extension.
//
// Usage:
//
//	simulate -experiment=all|table1|fig1|fig2|fig5678|table3|scale|amortization|ablations|hierarchy \
//	    [-scale=1.0] [-trace=DEC] [-tracefile=log.trace -groups=8] [-csv=outdir]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	sc "summarycache"
)

var (
	experiment = flag.String("experiment", "all", "experiment to run: all, table1, fig1, fig2, fig5678, table3, scale, amortization, ablations, hierarchy")
	scale      = flag.Float64("scale", 0.25, "trace scale factor (1.0 ≈ 200k requests for the largest trace)")
	traceName  = flag.String("trace", "", "restrict to one trace (DEC, UCB, UPisa, Questnet, NLANR)")
	traceFile  = flag.String("tracefile", "", "run against an external trace file (the repository text format) instead of the presets")
	fileGroups = flag.Int("groups", 8, "proxy group count for -tracefile traces")
	csvDir     = flag.String("csv", "", "also write each experiment's data as CSV into this directory")
)

// csvOut opens <csvDir>/<name>.csv, or returns nil when -csv is unset.
func csvOut(name string) (io.WriteCloser, error) {
	if *csvDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(*csvDir, name+".csv"))
}

// emitCSV runs write against a csvOut file when enabled.
func emitCSV(name string, write func(io.Writer) error) error {
	f, err := csvOut(name)
	if err != nil {
		return err
	}
	if f == nil {
		return nil
	}
	defer f.Close()
	return write(f)
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run() error {
	var sets []sc.TraceSet
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		reqs, err := sc.ReadTraceAuto(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", *traceFile, err)
		}
		name := filepath.Base(*traceFile)
		fmt.Fprintf(os.Stderr, "loaded %d requests from %s\n", len(reqs), *traceFile)
		sets = append(sets, sc.TraceSetFromRequests(name, reqs, *fileGroups))
	} else {
		for _, p := range sc.TracePresets() {
			if *traceName != "" && string(p) != *traceName {
				continue
			}
			fmt.Fprintf(os.Stderr, "generating %s trace (scale %g)...\n", p, *scale)
			ts, err := sc.LoadTraceSet(p, *scale)
			if err != nil {
				return err
			}
			sets = append(sets, ts)
		}
	}
	if len(sets) == 0 {
		return fmt.Errorf("no traces selected (unknown -trace=%q?)", *traceName)
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	if want("table1") {
		if err := table1(sets); err != nil {
			return err
		}
	}
	if want("fig1") {
		if err := fig1(sets); err != nil {
			return err
		}
	}
	if want("fig2") {
		if err := fig2(sets); err != nil {
			return err
		}
	}
	if want("fig5678") || want("table3") {
		if err := summaryComparison(sets); err != nil {
			return err
		}
	}
	if want("scale") {
		if err := scalability(); err != nil {
			return err
		}
	}
	if want("amortization") {
		if err := amortization(sets); err != nil {
			return err
		}
	}
	if want("ablations") {
		if err := ablations(sets); err != nil {
			return err
		}
	}
	if want("hierarchy") {
		if err := hierarchy(sets); err != nil {
			return err
		}
	}
	return nil
}

func hierarchy(sets []sc.TraceSet) error {
	fmt.Println("== Extension: parent/child hierarchy (paper §VIII, not simulated there) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tparent?\tsibling hit\tparent hit\torigin traffic")
	var all []sc.HierarchyRow
	for _, ts := range sets {
		rows, err := sc.Hierarchy(ts)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%v\t%.2f%%\t%.2f%%\t%.2f%%\n",
				r.Trace, r.WithParent, 100*r.HitRatio, 100*r.ParentHitRatio, 100*r.OriginMissRate)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("hierarchy", func(out io.Writer) error {
		return sc.HierarchyCSV(out, all)
	})
}

func ablations(sets []sc.TraceSet) error {
	fmt.Println("== Ablation: delta vs whole-array (cache digest) updates, Bloom lf=16 ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tthreshold\tdelta B/req\tdigest B/req")
	var allDigest []sc.DigestRow
	for _, ts := range sets {
		rows, err := sc.DigestVsDelta(ts, nil)
		if err != nil {
			return err
		}
		allDigest = append(allDigest, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.0f%%\t%.1f\t%.1f\n", r.Trace, 100*r.Threshold, r.DeltaBytesReq, r.DigestBytesReq)
		}
	}
	w.Flush()

	fmt.Println("\n== Ablation: number of hash functions (Bloom lf=16, threshold=1%) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tk\toptimal?\tfalse hit\tanalytic fp\thit ratio")
	var allK []sc.HashKRow
	for _, ts := range sets {
		rows, err := sc.HashKSweep(ts, nil)
		if err != nil {
			return err
		}
		allK = append(allK, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%v\t%.4f%%\t%.4f%%\t%.2f%%\n",
				r.Trace, r.K, r.Optimal, 100*r.FalseHit, 100*r.AnalyticFP, 100*r.HitRatio)
		}
	}
	w.Flush()

	fmt.Println("\n== Ablation: counting-filter counter width (Bloom lf=16, threshold=1%) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tcounter bits\tsaturations\tfalse hit\tcounter memory (KB)")
	var allC []sc.CounterRow
	for _, ts := range sets {
		rows, err := sc.CounterWidthSweep(ts, nil)
		if err != nil {
			return err
		}
		allC = append(allC, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.4f%%\t%.1f\n",
				r.Trace, r.CounterBits, r.Saturations, 100*r.FalseHit, float64(r.MemoryBytes)/1024)
		}
	}
	w.Flush()

	fmt.Println("\n== Ablation: Bloom load factor sweep (threshold=1%) ==")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tload factor\tfalse hit\tmsgs/req\tmemory/cache")
	var allLF []sc.LoadFactorRow
	for _, ts := range sets {
		rows, err := sc.LoadFactorSweep(ts, nil)
		if err != nil {
			return err
		}
		allLF = append(allLF, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%g\t%.4f%%\t%.3f\t%.3f%%\n",
				r.Trace, r.LoadFactor, 100*r.FalseHit, r.MsgsPerReq, r.MemoryPct)
		}
	}
	w.Flush()
	fmt.Println()
	for name, write := range map[string]func(io.Writer) error{
		"ablation_digest":      func(out io.Writer) error { return sc.DigestCSV(out, allDigest) },
		"ablation_hashk":       func(out io.Writer) error { return sc.HashKCSV(out, allK) },
		"ablation_counter":     func(out io.Writer) error { return sc.CounterCSV(out, allC) },
		"ablation_load_factor": func(out io.Writer) error { return sc.LoadFactorCSV(out, allLF) },
	} {
		if err := emitCSV(name, write); err != nil {
			return err
		}
	}
	return nil
}

func amortization(sets []sc.TraceSet) error {
	fmt.Println("== Ablation: update-batch amortization (Bloom lf=16, threshold=1%) ==")
	fmt.Println("   (batch≈90 is the prototype's fill-an-IP-packet rule; the paper's")
	fmt.Println("    million-entry caches batch thousands of documents per update)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tbatch (docs)\thit ratio\tmsgs/req\tbytes/req\tvs ICP")
	var all []sc.AmortRow
	for _, ts := range sets {
		rows, err := sc.UpdateAmortization(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.2f%%\t%.3f\t%.1f\t%.1fx\n",
				r.Trace, r.MinUpdateDocs, 100*r.HitRatio, r.MsgsPerReq, r.BytesPerReq, r.ICPFactor)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("amortization", func(out io.Writer) error {
		return sc.AmortCSV(out, all)
	})
}

func table1(sets []sc.TraceSet) error {
	fmt.Println("== Table I: trace statistics ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\trequests\tclients\tgroups\tunique docs\tinf cache (MB)\tmax hit\tmax byte hit")
	for _, ts := range sets {
		s := sc.TableI(ts)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f%%\t%.1f%%\n",
			s.Name, s.Requests, s.Clients, ts.Groups, s.UniqueDocs,
			float64(s.InfiniteCacheSize)/(1<<20), 100*s.MaxHitRatio, 100*s.MaxByteHitRatio)
	}
	w.Flush()
	fmt.Println()
	return emitCSV("table1", func(out io.Writer) error {
		return sc.TableICSV(out, sets)
	})
}

func fig1(sets []sc.TraceSet) error {
	fmt.Println("== Figure 1: hit ratios under cooperative caching schemes ==")
	var all []sc.Fig1Row
	for _, ts := range sets {
		rows, err := sc.Fig1(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		fmt.Printf("-- %s --\n", ts.Name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "cache size\t")
		for _, s := range sc.Fig1Schemes {
			fmt.Fprintf(w, "%v\t", s)
		}
		fmt.Fprintln(w)
		for _, frac := range sc.Fig1CacheFracs {
			fmt.Fprintf(w, "%.1f%%\t", 100*frac)
			for _, s := range sc.Fig1Schemes {
				for _, r := range rows {
					if r.CacheFrac == frac && r.Scheme == s {
						fmt.Fprintf(w, "%.1f%%\t", 100*r.HitRatio)
					}
				}
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	fmt.Println()
	return emitCSV("fig1", func(out io.Writer) error {
		return sc.Fig1CSV(out, all)
	})
}

func fig2(sets []sc.TraceSet) error {
	fmt.Println("== Figure 2: impact of summary update delays (exact-directory, cache=10%) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tthreshold\thit ratio\tfalse miss\tfalse hit\tremote stale hit")
	var all []sc.Fig2Row
	for _, ts := range sets {
		rows, err := sc.Fig2(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f%%\t%.2f%%\t%.3f%%\t%.3f%%\t%.3f%%\n",
				r.Trace, 100*r.Threshold, 100*r.HitRatio, 100*r.FalseMissRate,
				100*r.FalseHitRate, 100*r.StaleHitRate)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("fig2", func(out io.Writer) error {
		return sc.Fig2CSV(out, all)
	})
}

func summaryComparison(sets []sc.TraceSet) error {
	fmt.Println("== Figures 5-8 + Table III: summary representations (threshold=1%, cache=10%) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tsummary\thit ratio (F5)\tfalse hit (F6)\tmsgs/req (F7)\tbytes/req (F8)\tmemory/cache (T3)")
	var all []sc.SummaryRow
	for _, ts := range sets {
		rows, err := sc.SummaryComparison(ts, nil)
		if err != nil {
			return err
		}
		all = append(all, rows...)
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.2f%%\t%.4f%%\t%.3f\t%.1f\t%.3f%%\n",
				r.Trace, r.Label(), 100*r.HitRatio, 100*r.FalseHit,
				r.MsgsPerReq, r.BytesPerReq, r.MemoryPct)
		}
	}
	w.Flush()
	fmt.Println()
	return emitCSV("fig5678_table3", func(out io.Writer) error {
		return sc.SummaryCSV(out, all)
	})
}

func scalability() error {
	fmt.Println("== §V-F: scalability with the number of proxies (Bloom lf=16, threshold=1%) ==")
	rows, err := sc.Scalability(nil, 4000)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "proxies\thit ratio\tSC msgs/req\tICP msgs/req\treduction\tsummary table (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f%%\t%.3f\t%.3f\t%.1fx\t%.2f\n",
			r.Proxies, 100*r.HitRatio, r.MsgsPerReq, r.ICPMsgsPerReq,
			r.ICPMsgsPerReq/r.MsgsPerReq, r.SummaryTableMB)
	}
	w.Flush()
	fmt.Println()
	return emitCSV("scalability", func(out io.Writer) error {
		return sc.ScaleCSV(out, rows)
	})
}

package tracegen

import (
	"math"
	"sort"

	"summarycache/internal/trace"
)

// Popularity analysis: the paper's workload substitution (DESIGN.md §4)
// rests on reproducing the Zipf-like popularity of Web traces. FitZipf
// estimates the skew of an actual request stream so generated traces can
// be validated against their configured alpha — and so external traces
// fed through cmd/simulate -tracefile can be characterized.

// PopularityStats summarizes a trace's document-popularity distribution.
type PopularityStats struct {
	UniqueDocs int
	// Alpha is the fitted Zipf exponent (log-log regression of frequency
	// on rank over the head of the distribution).
	Alpha float64
	// TopShare[k] is the fraction of requests absorbed by the most
	// popular 10^-k of documents (index 1 = top 10%, 2 = top 1%).
	Top10Share float64
	Top1Share  float64
	// OneTimers is the fraction of documents referenced exactly once —
	// the "one-timer" mass Web-cache studies track.
	OneTimers float64
}

// AnalyzePopularity computes popularity statistics for a request stream.
func AnalyzePopularity(reqs []trace.Request) PopularityStats {
	counts := make(map[string]int)
	for _, r := range reqs {
		counts[r.URL]++
	}
	if len(counts) == 0 {
		return PopularityStats{}
	}
	freqs := make([]int, 0, len(counts))
	oneTimers := 0
	for _, c := range counts {
		freqs = append(freqs, c)
		if c == 1 {
			oneTimers++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))

	st := PopularityStats{
		UniqueDocs: len(freqs),
		OneTimers:  float64(oneTimers) / float64(len(freqs)),
	}
	total := len(reqs)
	cum := 0
	top10 := (len(freqs) + 9) / 10
	top1 := (len(freqs) + 99) / 100
	for i, f := range freqs {
		cum += f
		if i+1 == top10 {
			st.Top10Share = float64(cum) / float64(total)
		}
		if i+1 == top1 {
			st.Top1Share = float64(cum) / float64(total)
		}
	}
	st.Alpha = fitZipf(freqs)
	return st
}

// fitZipf estimates the Zipf exponent by least-squares regression of
// log(frequency) on log(rank), restricted to the head of the distribution
// (ranks with frequency ≥ 2) where the power law lives; the one-timer
// tail is plateaued by discreteness and would bias the slope.
func fitZipf(sortedFreqs []int) float64 {
	var xs, ys []float64
	for i, f := range sortedFreqs {
		if f < 2 {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(f)))
	}
	if len(xs) < 3 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope // Zipf: freq ∝ rank^-alpha
}

package bloom

import (
	"testing"

	"summarycache/internal/hashing"
)

// TestCountingStateRoundTrip pins the snapshot/restore invariant: a
// restored filter answers every membership query, counter read, and
// accounting stat exactly like the captured one — including saturation
// state, which cannot be rebuilt from keys.
func TestCountingStateRoundTrip(t *testing.T) {
	spec := hashing.DefaultSpec
	src := MustNewCountingFilter(1024, 4, spec)
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		src.Add(k, nil)
	}
	// Saturate one position by re-adding a key many times.
	for i := 0; i < 20; i++ {
		src.Add("hot", nil)
	}
	src.Remove("e", nil)

	blob := src.StateSnapshot()
	dst := MustNewCountingFilter(1024, 4, spec)
	if err := dst.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	for _, k := range append(keys[:4], "hot") {
		if !dst.Test(k) {
			t.Fatalf("restored filter lost %q", k)
		}
	}
	if dst.Entries() != src.Entries() {
		t.Fatalf("entries %d != %d", dst.Entries(), src.Entries())
	}
	if dst.OnesCount() != src.OnesCount() {
		t.Fatalf("ones %d != %d", dst.OnesCount(), src.OnesCount())
	}
	if dst.Saturations() != src.Saturations() {
		t.Fatalf("saturations %d != %d", dst.Saturations(), src.Saturations())
	}
	for i := uint64(0); i < src.Size(); i++ {
		a, _ := src.Count(i)
		b, _ := dst.Count(i)
		if a != b {
			t.Fatalf("counter %d: %d != %d", i, a, b)
		}
	}
	if string(dst.BitFilter().Snapshot()) != string(src.BitFilter().Snapshot()) {
		t.Fatal("derived bit filters differ")
	}
}

// TestCountingStateGeometryMismatch: a blob from a differently shaped
// filter must be refused, not half-applied.
func TestCountingStateGeometryMismatch(t *testing.T) {
	spec := hashing.DefaultSpec
	blob := MustNewCountingFilter(1024, 4, spec).StateSnapshot()
	cases := []*CountingFilter{
		MustNewCountingFilter(2048, 4, spec),
		MustNewCountingFilter(1024, 8, spec),
		MustNewCountingFilter(1024, 4, hashing.Spec{FunctionNum: 2, FunctionBits: 32}),
	}
	for i, dst := range cases {
		if err := dst.RestoreState(blob); err == nil {
			t.Fatalf("case %d: geometry mismatch accepted", i)
		}
	}
	dst := MustNewCountingFilter(1024, 4, spec)
	if err := dst.RestoreState(blob[:8]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if err := dst.RestoreState([]byte("nope")); err == nil {
		t.Fatal("garbage blob accepted")
	}
}

// TestRemoveUnderflowSaturates pins the underflow guard: decrementing a
// counter already at zero is a counted no-op, never a wrap to cmax that
// would assert membership for unrelated keys. The double-eviction here
// models the restore + journal overlap window of crash recovery.
func TestRemoveUnderflowSaturates(t *testing.T) {
	c := MustNewCountingFilter(256, 4, hashing.DefaultSpec)
	c.Add("doc", nil)
	c.Remove("doc", nil)
	if got := c.Underflows(); got != 0 {
		t.Fatalf("clean add/remove recorded %d underflows", got)
	}
	c.Remove("doc", nil) // double-applied eviction
	if got := c.Underflows(); got == 0 {
		t.Fatal("double eviction recorded no underflows")
	}
	if c.Test("doc") {
		t.Fatal("underflow wrapped a counter: phantom membership")
	}
	for i := uint64(0); i < c.Size(); i++ {
		if v, _ := c.Count(i); v != 0 {
			t.Fatalf("counter %d nonzero (%d) after underflow", i, v)
		}
	}
}

package sim

import (
	"fmt"
	"testing"

	"summarycache/internal/hashing"
)

func pk(url string) probeKey { return probeKey{url: url, server: ServerOf(url)} }

func bloomPK(t *testing.T, url string, m uint64) probeKey {
	t.Helper()
	fam := hashing.MustNew(hashing.DefaultSpec)
	idx, err := fam.Indexes(nil, url, m)
	if err != nil {
		t.Fatal(err)
	}
	return probeKey{url: url, idx: idx}
}

func TestExactDirSummaryLifecycle(t *testing.T) {
	s := newExactDirSummary(PaperMessageModel)
	if s.probe(pk("http://a/")) {
		t.Fatal("empty summary probed true")
	}
	s.insert("http://a/")
	s.insert("http://b/")
	if s.probe(pk("http://a/")) {
		t.Fatal("unpublished insert visible (summaries are delayed by design)")
	}
	if s.pending() != 2 {
		t.Fatalf("pending = %d", s.pending())
	}
	bytes := s.publish()
	// 20-byte header + 16 bytes per change (the paper's cost model).
	if bytes != 20+2*16 {
		t.Fatalf("publish bytes = %d, want 52", bytes)
	}
	if !s.probe(pk("http://a/")) || !s.probe(pk("http://b/")) {
		t.Fatal("published entries not visible")
	}
	if s.memoryBytes() != 2*16 {
		t.Fatalf("memory = %d, want 32 (16B MD5 per entry)", s.memoryBytes())
	}
	s.remove("http://a/")
	s.publish()
	if s.probe(pk("http://a/")) {
		t.Fatal("removed entry still visible after publish")
	}
	if s.counterBytes() != 0 {
		t.Fatal("exact-dir has no counters")
	}
}

func TestServerNameSummaryRefCounting(t *testing.T) {
	s := newServerNameSummary(PaperMessageModel)
	s.insert("http://host.com/a")
	s.insert("http://host.com/b") // same server: no new journal entry
	if s.pending() != 1 {
		t.Fatalf("pending = %d, want 1 (one server)", s.pending())
	}
	s.publish()
	if !s.probe(pk("http://host.com/anything")) {
		t.Fatal("server not visible")
	}
	// Removing one URL keeps the server; removing both drops it.
	s.remove("http://host.com/a")
	if s.pending() != 0 {
		t.Fatalf("pending = %d after partial removal, want 0", s.pending())
	}
	s.remove("http://host.com/b")
	if s.pending() != 1 {
		t.Fatalf("pending = %d after full removal, want 1", s.pending())
	}
	s.publish()
	if s.probe(pk("http://host.com/anything")) {
		t.Fatal("server visible after all URLs removed")
	}
	// Underflow remove is ignored.
	s.remove("http://never.com/x")
	if s.pending() != 0 {
		t.Fatal("underflow journaled a change")
	}
	if s.memoryBytes() != 0 {
		t.Fatal("empty summary has memory")
	}
}

func TestBloomSummaryDeltaVsDigestCost(t *testing.T) {
	const m = 1 << 12
	delta := newBloomSummary(PaperMessageModel, m, 4, hashing.DefaultSpec, false)
	digest := newBloomSummary(PaperMessageModel, m, 4, hashing.DefaultSpec, true)
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("http://h/%d", i)
		delta.insert(u)
		digest.insert(u)
	}
	db := delta.publish()
	gb := digest.publish()
	// Delta: 32-byte header + 4 bytes per flip (≤ 40 flips for 10 docs).
	if db > 32+40*4 || db < 32+4 {
		t.Fatalf("delta publish = %d bytes, want header+flips", db)
	}
	// Digest: header + whole array (m/8 bytes), regardless of change count.
	if gb != 32+m/8 {
		t.Fatalf("digest publish = %d bytes, want %d", gb, 32+m/8)
	}
	// Probing behavior is identical.
	k := bloomPK(t, "http://h/3", m)
	if !delta.probe(k) || !digest.probe(k) {
		t.Fatal("published doc not visible")
	}
	if delta.memoryBytes() != m/8 || digest.memoryBytes() != m/8 {
		t.Fatal("bloom memory should be m/8 bytes")
	}
	if delta.counterBytes() == 0 {
		t.Fatal("counting filter memory not reported")
	}
}

func TestBloomSummaryDelayedVisibility(t *testing.T) {
	const m = 1 << 12
	s := newBloomSummary(PaperMessageModel, m, 4, hashing.DefaultSpec, false)
	s.insert("http://x/")
	if s.probe(bloomPK(t, "http://x/", m)) {
		t.Fatal("unpublished insert visible")
	}
	s.publish()
	if !s.probe(bloomPK(t, "http://x/", m)) {
		t.Fatal("published insert invisible")
	}
	s.remove("http://x/")
	if !s.probe(bloomPK(t, "http://x/", m)) {
		t.Fatal("unpublished removal already visible")
	}
	s.publish()
	if s.probe(bloomPK(t, "http://x/", m)) {
		t.Fatal("published removal still visible")
	}
}

func TestOracleAndICPSummariesAreStateless(t *testing.T) {
	for name, s := range map[string]summarizer{"oracle": oracleSummary{}, "icp": icpSummary{}} {
		s.insert("http://a/")
		s.remove("http://a/")
		if s.pending() != 0 || s.publish() != 0 || s.memoryBytes() != 0 || s.counterBytes() != 0 {
			t.Errorf("%s summary is not stateless", name)
		}
		if !s.probe(pk("http://anything/")) {
			t.Errorf("%s summary must always answer maybe", name)
		}
	}
}

// BloomDigest behaves identically to Bloom in hit/false-hit terms through
// the full engine; only update bytes differ.
func TestEngineBloomDigestEquivalence(t *testing.T) {
	reqs := testTrace(t, 20000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	run := func(kind SummaryKind) Result {
		r, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
			Summary: SummaryConfig{Kind: kind, UpdateThreshold: 0.01, LoadFactor: 16}}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	delta := run(Bloom)
	digest := run(BloomDigest)
	if delta.HitRatio() != digest.HitRatio() {
		t.Errorf("hit ratios differ: %.4f vs %.4f", delta.HitRatio(), digest.HitRatio())
	}
	if delta.FalseHits != digest.FalseHits {
		t.Errorf("false hits differ: %d vs %d", delta.FalseHits, digest.FalseHits)
	}
	if delta.UpdateMessages != digest.UpdateMessages {
		t.Errorf("update message counts differ: %d vs %d", delta.UpdateMessages, digest.UpdateMessages)
	}
	if delta.UpdateBytes == digest.UpdateBytes {
		t.Error("update bytes should differ between delta and digest")
	}
}

// MinUpdateDocs batches updates without affecting correctness categories
// other than the expected added staleness.
func TestEngineMinUpdateDocs(t *testing.T) {
	reqs := testTrace(t, 20000)
	per := cacheSizeFor(t, reqs, 0.10, 4)
	run := func(minDocs int) Result {
		r, err := Run(Config{NumProxies: 4, CacheBytes: per, Scheme: SimpleSharing,
			Summary: SummaryConfig{Kind: Bloom, UpdateThreshold: 0.01, LoadFactor: 16,
				MinUpdateDocs: minDocs}}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	fine := run(0)
	coarse := run(50)
	if coarse.UpdateEvents >= fine.UpdateEvents {
		t.Errorf("batching did not reduce update events: %d vs %d",
			coarse.UpdateEvents, fine.UpdateEvents)
	}
	if coarse.HitRatio() > fine.HitRatio()+1e-9 {
		t.Errorf("coarser updates should not raise hit ratio: %.4f vs %.4f",
			coarse.HitRatio(), fine.HitRatio())
	}
	if coarse.FalseMisses < fine.FalseMisses {
		t.Errorf("coarser updates should not reduce false misses")
	}
}

package experiments

import (
	"testing"

	"summarycache/internal/tracegen"
)

func TestDigestVsDelta(t *testing.T) {
	ts := loadTest(t, tracegen.UPisa)
	rows, err := DigestVsDelta(ts, []float64{0.01, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	small, large := rows[0], rows[1]
	// At a small threshold deltas are tiny and the digest ships the whole
	// array every time: delta must win.
	if small.DeltaBytesReq >= small.DigestBytesReq {
		t.Errorf("threshold 1%%: delta (%.1f B/req) should beat digest (%.1f B/req)",
			small.DeltaBytesReq, small.DigestBytesReq)
	}
	// Digest cost per event is constant, so growing the threshold cannot
	// increase its per-request cost; delta's per-event cost grows with the
	// batch. The *gap* must narrow (the §VI crossover direction).
	gapSmall := small.DigestBytesReq / small.DeltaBytesReq
	gapLarge := large.DigestBytesReq / large.DeltaBytesReq
	if gapLarge >= gapSmall {
		t.Errorf("digest/delta ratio should shrink with threshold: %.2f → %.2f",
			gapSmall, gapLarge)
	}
	if small.HitRatio <= 0 {
		t.Error("zero hit ratio")
	}
}

func TestHashKSweep(t *testing.T) {
	ts := loadTest(t, tracegen.UPisa)
	rows, err := HashKSweep(ts, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// k=1 must have far more false hits than k=4 at load factor 16.
	if rows[0].FalseHit <= rows[1].FalseHit {
		t.Errorf("k=1 false hits (%.4f) should exceed k=4 (%.4f)",
			rows[0].FalseHit, rows[1].FalseHit)
	}
	// Analytic prediction must order the same way.
	if rows[0].AnalyticFP <= rows[1].AnalyticFP {
		t.Error("analytic FP ordering broken")
	}
	// Hit ratios barely move (false hits don't lose hits).
	for _, r := range rows[1:] {
		if d := r.HitRatio - rows[0].HitRatio; d > 0.02 || d < -0.02 {
			t.Errorf("k=%d hit ratio moved too much: %.4f vs %.4f", r.K, r.HitRatio, rows[0].HitRatio)
		}
	}
}

func TestCounterWidthSweep(t *testing.T) {
	ts := loadTest(t, tracegen.UPisa)
	rows, err := CounterWidthSweep(ts, []uint{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	narrow, wide := rows[0], rows[1]
	// 1-bit counters saturate on the first shared position; 4-bit counters
	// should rarely saturate at the paper's load factor.
	if narrow.Saturations == 0 {
		t.Error("1-bit counters never saturated — implausible")
	}
	if wide.Saturations > narrow.Saturations/10 {
		t.Errorf("4-bit saturations (%d) not far below 1-bit (%d)",
			wide.Saturations, narrow.Saturations)
	}
	// Stuck bits make the narrow filter claim more: false hits at least as
	// high as the wide filter's.
	if narrow.FalseHit < wide.FalseHit {
		t.Errorf("1-bit false hits (%.4f) below 4-bit (%.4f)", narrow.FalseHit, wide.FalseHit)
	}
	// Memory scales with width.
	if narrow.MemoryBytes >= wide.MemoryBytes {
		t.Error("1-bit counters should use less memory than 4-bit")
	}
}

func TestLoadFactorSweep(t *testing.T) {
	ts := loadTest(t, tracegen.UPisa)
	rows, err := LoadFactorSweep(ts, []float64{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	// False hits fall and memory rises monotonically with the load factor.
	for i := 1; i < len(rows); i++ {
		if rows[i].FalseHit > rows[i-1].FalseHit {
			t.Errorf("false hits rose with load factor: lf=%g %.4f → lf=%g %.4f",
				rows[i-1].LoadFactor, rows[i-1].FalseHit, rows[i].LoadFactor, rows[i].FalseHit)
		}
		if rows[i].MemoryPct <= rows[i-1].MemoryPct {
			t.Errorf("memory did not rise with load factor")
		}
	}
}

package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// loadFixtures loads the go.mod-less fixture universe once per test run.
func loadFixtures(t *testing.T) *Universe {
	t.Helper()
	u, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("Load(testdata/src): %v", err)
	}
	return u
}

// TestGoldenFixtures runs the full rule suite over the fixture universe
// and compares the rendered diagnostics against testdata/golden.txt.
// Run with -update to regenerate the golden after intentional changes.
func TestGoldenFixtures(t *testing.T) {
	u := loadFixtures(t)
	for _, pkg := range u.Pkgs {
		for _, err := range pkg.SoftErrors {
			t.Errorf("fixture package %s has type error: %v", pkg.Path, err)
		}
	}

	findings := Run(u, Rules())
	var buf bytes.Buffer
	WritePlain(&buf, findings)
	got := buf.String()

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("fixture findings diverge from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Every rule — including the implicit lint-directive rule — must have
	// at least one positive fixture case.
	seen := map[string]int{}
	for _, f := range findings {
		seen[f.Rule]++
	}
	for _, name := range append(RuleNames(), RuleLintDirective) {
		if seen[name] == 0 {
			t.Errorf("rule %s has no positive fixture finding", name)
		}
	}

	// Negative fixtures (ok/, okmain/, nostats/, determinism/ok) must be
	// completely silent.
	for _, f := range findings {
		for _, quiet := range []string{"/ok/", "/okmain/", "/nostats/"} {
			if strings.Contains("/"+f.File, quiet) {
				t.Errorf("negative fixture produced a finding: %s", f)
			}
		}
	}
}

// TestModuleTreeIsClean pins the repo itself at zero findings: any rule
// regression or new violation in library code fails this test before CI
// even reaches the sclint gate.
func TestModuleTreeIsClean(t *testing.T) {
	findings, err := LintDir(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LintDir(module root): %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding on module tree: %s", f)
	}
}

func TestMetricFieldName(t *testing.T) {
	cases := []struct{ metric, want string }{
		{"summarycache_node_queries_sent_total", "QueriesSent"},
		{"summarycache_proxy_requests_total", "Requests"},
		{"summarycache_pos_frames_dropped_total", "FramesDropped"},
		{"summarycache_hits_total", "Hits"},                          // single word: nothing to strip
		{"summarycache_proxy_cache_hits", "CacheHits"},               // no _total suffix
		{"plain_name_total", "Name"},                                 // no summarycache_ prefix
		{"summarycache_node_query_rtt_seconds", "QueryRTTSeconds"},   // initialism uppercased
		{"summarycache_proxy_inflight_requests", "InflightRequests"}, // gauge, no _total
		{"summarycache_icp_udp_send_errors_total", "UDPSendErrors"},  // leading initialism
	}
	for _, c := range cases {
		if got := metricFieldName(c.metric); got != c.want {
			t.Errorf("metricFieldName(%q) = %q, want %q", c.metric, got, c.want)
		}
	}
}

func TestParseIgnores(t *testing.T) {
	const src = `package p

//lint:ignore sclint/determinism wall clock is the measurement
var a int

//lint:ignore sclint/stray-printing,sclint/unchecked-close two rules one reason
var b int

//lint:ignore sclint/atomic-mixing
var c int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := parseIgnores(fset, f)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3", len(ds))
	}
	if !ds[0].rules["determinism"] || ds[0].reason != "wall clock is the measurement" {
		t.Errorf("directive 0 parsed as %+v", ds[0])
	}
	if !ds[1].rules["stray-printing"] || !ds[1].rules["unchecked-close"] {
		t.Errorf("directive 1 should cover both rules, got %+v", ds[1].rules)
	}
	if ds[1].reason != "two rules one reason" {
		t.Errorf("directive 1 reason = %q", ds[1].reason)
	}
	if ds[2].reason != "" {
		t.Errorf("directive 2 should have empty reason, got %q", ds[2].reason)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("nil findings should encode as [], got %q", got)
	}

	buf.Reset()
	in := []Finding{{Rule: RuleStrayPrinting, File: "x/y.go", Line: 3, Col: 2, Message: "m"}}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Errorf("round-trip mismatch: %+v", out)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: RuleDeterminism, File: "internal/sim/sim.go", Line: 42, Message: "time.Now in replay path"}
	const want = "internal/sim/sim.go:42: [determinism] time.Now in replay path"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

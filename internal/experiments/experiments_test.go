package experiments

import (
	"testing"

	"summarycache/internal/sim"
	"summarycache/internal/tracegen"
)

// A small scale keeps the unit tests fast; benchmark runs use larger scales.
const testScale = 0.05

func loadTest(t *testing.T, p tracegen.Preset) TraceSet {
	t.Helper()
	ts, err := Load(p, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestLoadAll(t *testing.T) {
	all, err := LoadAll(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("got %d traces", len(all))
	}
	names := map[string]bool{}
	for _, ts := range all {
		names[ts.Name] = true
		if ts.Stats.Requests == 0 || ts.Groups <= 0 || ts.AvgDocBytes <= 0 {
			t.Errorf("%s: bad derived parameters %+v", ts.Name, ts)
		}
		if ts.CacheBytesPerProxy(0.10) <= 0 {
			t.Errorf("%s: non-positive cache size", ts.Name)
		}
	}
	for _, want := range []string{"DEC", "UCB", "UPisa", "Questnet", "NLANR"} {
		if !names[want] {
			t.Errorf("missing trace %s", want)
		}
	}
}

func TestFig1(t *testing.T) {
	ts := loadTest(t, tracegen.UPisa)
	rows, err := Fig1(ts, []float64{0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Fig1Schemes) {
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Scheme.String()+"@"+itoa(r.CacheFrac)] = r.HitRatio
	}
	// Sharing beats no sharing at both sizes.
	for _, frac := range []float64{0.05, 0.10} {
		k := itoa(frac)
		if byKey["simple@"+k] <= byKey["no-sharing@"+k] {
			t.Errorf("frac %v: simple (%.3f) did not beat no-sharing (%.3f)",
				frac, byKey["simple@"+k], byKey["no-sharing@"+k])
		}
	}
	// Hit ratio grows with cache size for every scheme.
	for _, sch := range Fig1Schemes {
		if byKey[sch.String()+"@"+itoa(0.10)] < byKey[sch.String()+"@"+itoa(0.05)]-0.01 {
			t.Errorf("%v: hit ratio shrank with larger cache", sch)
		}
	}
}

func itoa(f float64) string {
	switch f {
	case 0.05:
		return "5"
	case 0.10:
		return "10"
	default:
		return "x"
	}
}

func TestFig2(t *testing.T) {
	ts := loadTest(t, tracegen.UCB)
	rows, err := Fig2(ts, []float64{0, 0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Threshold != 0 || rows[0].FalseMissRate != 0 {
		t.Errorf("zero threshold must have zero false misses: %+v", rows[0])
	}
	// Hit ratio non-increasing in threshold; false misses non-decreasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRatio > rows[i-1].HitRatio+1e-9 {
			t.Errorf("hit ratio rose with threshold: %+v -> %+v", rows[i-1], rows[i])
		}
		if rows[i].FalseMissRate+1e-9 < rows[i-1].FalseMissRate {
			t.Errorf("false misses fell with threshold: %+v -> %+v", rows[i-1], rows[i])
		}
	}
}

func TestSummaryComparison(t *testing.T) {
	ts := loadTest(t, tracegen.UPisa)
	rows, err := SummaryComparison(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PaperSummaryVariants) {
		t.Fatalf("got %d rows", len(rows))
	}
	byLabel := map[string]SummaryRow{}
	for _, r := range rows {
		byLabel[r.Label()] = r
		if r.Label() == "" {
			t.Error("empty label")
		}
	}
	// Fig. 5: bloom ≈ exact-directory hit ratio.
	d := byLabel["bloom_16"].HitRatio - byLabel["exact-directory"].HitRatio
	if d > 0.02 || d < -0.02 {
		t.Errorf("bloom16 vs exact hit delta %.4f too large", d)
	}
	// Fig. 6: server-name false hits dominate.
	if byLabel["server-name"].FalseHit <= byLabel["bloom_32"].FalseHit {
		t.Error("server-name should have the worst false-hit ratio")
	}
	// Fig. 7: ICP has the most query traffic. (At this toy scale each
	// proxy caches only a few dozen documents, so the 1% update threshold
	// degenerates to one update per insert and total message counts are
	// update-dominated; the paper's regime — million-entry caches where
	// updates amortize away — is exercised by the benchmarks. Query
	// traffic is the scale-robust part of the claim.)
	for _, l := range []string{"exact-directory", "bloom_8", "bloom_16", "bloom_32"} {
		if byLabel[l].Result.QueryMessages >= byLabel["ICP"].Result.QueryMessages {
			t.Errorf("%s queries %d not below ICP %d", l,
				byLabel[l].Result.QueryMessages, byLabel["ICP"].Result.QueryMessages)
		}
	}
	// Table III: memory ordering bloom8 < bloom16 < bloom32 < exact.
	if !(byLabel["bloom_8"].MemoryPct < byLabel["bloom_16"].MemoryPct &&
		byLabel["bloom_16"].MemoryPct < byLabel["bloom_32"].MemoryPct) {
		t.Error("bloom memory should grow with load factor")
	}
	if byLabel["ICP"].MemoryPct != 0 {
		t.Error("ICP needs no summary memory")
	}
}

func TestScalability(t *testing.T) {
	rows, err := Scalability([]int{4, 8}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MsgsPerReq >= r.ICPMsgsPerReq {
			t.Errorf("n=%d: summary cache (%.3f msgs/req) not below ICP (%.3f)",
				r.Proxies, r.MsgsPerReq, r.ICPMsgsPerReq)
		}
	}
	// ICP overhead grows with mesh size much faster than summary cache's.
	icpGrowth := rows[1].ICPMsgsPerReq / rows[0].ICPMsgsPerReq
	scGrowth := rows[1].MsgsPerReq / rows[0].MsgsPerReq
	if icpGrowth <= scGrowth {
		t.Errorf("ICP growth %.2f should exceed summary-cache growth %.2f", icpGrowth, scGrowth)
	}
}

func TestTableI(t *testing.T) {
	ts := loadTest(t, tracegen.DEC)
	st := TableI(ts)
	if st.Name != "DEC" || st.Requests == 0 || st.MaxHitRatio <= 0 {
		t.Fatalf("bad Table I row: %+v", st)
	}
}

func TestSummaryRowLabel(t *testing.T) {
	if (SummaryRow{Kind: sim.Bloom, LoadFactor: 8}).Label() != "bloom_8" {
		t.Error("bloom label")
	}
	if (SummaryRow{Kind: sim.ICP}).Label() != "ICP" {
		t.Error("ICP label")
	}
}

func TestHierarchy(t *testing.T) {
	ts := loadTest(t, tracegen.UCB)
	rows, err := Hierarchy(ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	flat, parent := rows[0], rows[1]
	if flat.WithParent || !parent.WithParent {
		t.Fatal("row order broken")
	}
	if flat.ParentHitRatio != 0 {
		t.Error("flat mesh recorded parent hits")
	}
	if parent.ParentHitRatio <= 0 {
		t.Error("parent never hit")
	}
	if parent.OriginMissRate >= flat.OriginMissRate {
		t.Errorf("parent did not reduce origin traffic: %.3f vs %.3f",
			parent.OriginMissRate, flat.OriginMissRate)
	}
}

func TestLoadFromRequests(t *testing.T) {
	base := loadTest(t, tracegen.UPisa)
	ts := LoadFromRequests("external", base.Requests, 8)
	if ts.Name != "external" || ts.Groups != 8 {
		t.Fatalf("bad trace set: %+v", ts)
	}
	if ts.Stats.Requests != base.Stats.Requests || ts.AvgDocBytes != base.AvgDocBytes {
		t.Fatal("derived stats differ from Load")
	}
	if LoadFromRequests("x", nil, 0).Groups != 1 {
		t.Fatal("zero groups not defaulted")
	}
	// The set must drive an experiment end to end.
	if _, err := Fig2(ts, []float64{0.01}); err != nil {
		t.Fatal(err)
	}
}

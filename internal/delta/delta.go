// Package delta implements rsync-style delta encoding between document
// versions. The paper notes that remote stale hits "are not necessarily
// wasted efforts, because delta compressions can be used to transfer the
// new document" (§V, citing Mogul et al.): a proxy holding a stale copy
// can fetch just the differences instead of the full body.
//
// The encoding is the classic two-level rolling scheme: the receiver's old
// version is cut into fixed-size blocks, each summarized by a weak 32-bit
// rolling checksum (an Adler-32 variant, cheap to slide byte-by-byte) and
// a strong MD5 digest; the sender slides a window over the new version,
// matching blocks via weak-then-strong lookup, and emits COPY operations
// for matches and LITERAL runs for everything else.
package delta

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultBlockSize balances signature size against match granularity for
// Web-document-sized payloads.
const DefaultBlockSize = 512

// Op codes of the delta stream.
const (
	opCopy    = 0x01 // uvarint blockIndex, uvarint blockCount
	opLiteral = 0x02 // uvarint length, bytes
)

// Signature summarizes one version of a document for delta computation.
type Signature struct {
	BlockSize int
	// blocks[i] describes old[i*BlockSize : (i+1)*BlockSize] (the final
	// block may be short).
	weak     []uint32
	strong   [][md5.Size]byte
	totalLen int

	// weakIndex maps weak checksum -> candidate block indices.
	weakIndex map[uint32][]int
}

// NewSignature computes the block signature of old.
func NewSignature(old []byte, blockSize int) *Signature {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	s := &Signature{
		BlockSize: blockSize,
		totalLen:  len(old),
		weakIndex: make(map[uint32][]int),
	}
	for i := 0; i < len(old); i += blockSize {
		end := i + blockSize
		if end > len(old) {
			end = len(old)
		}
		w := weakSum(old[i:end])
		idx := len(s.weak)
		s.weak = append(s.weak, w)
		s.strong = append(s.strong, md5.Sum(old[i:end]))
		s.weakIndex[w] = append(s.weakIndex[w], idx)
	}
	return s
}

// Blocks returns the number of blocks in the signature.
func (s *Signature) Blocks() int { return len(s.weak) }

// SignatureBytes returns the wire size of the signature (what the stale
// holder sends upstream): 4 weak + 16 strong bytes per block plus a small
// header (block size and total length).
func (s *Signature) SignatureBytes() int { return 16 + s.Blocks()*(4+md5.Size) }

// weakSum is the Adler-style rolling checksum over b.
func weakSum(b []byte) uint32 {
	var a, s uint32
	for i, c := range b {
		a += uint32(c)
		s += uint32(len(b)-i) * uint32(c)
	}
	return a&0xffff | s<<16
}

// roller slides the weak checksum one byte at a time.
type roller struct {
	a, s uint32
	n    uint32
}

func newRoller(b []byte) roller {
	var r roller
	r.n = uint32(len(b))
	for i, c := range b {
		r.a += uint32(c)
		r.s += uint32(len(b)-i) * uint32(c)
	}
	return r
}

// roll removes out and appends in.
func (r *roller) roll(out, in byte) {
	r.a += uint32(in) - uint32(out)
	r.s += r.a - r.n*uint32(out)
}

func (r *roller) sum() uint32 { return r.a&0xffff | r.s<<16 }

// Encode computes a delta that transforms the document described by sig
// into target. The stream header carries the block size and the base
// length so Apply can verify it is fed the right base version.
func Encode(sig *Signature, target []byte) []byte {
	bs := sig.BlockSize
	out := binary.AppendUvarint(nil, uint64(bs))
	out = binary.AppendUvarint(out, uint64(sig.totalLen))
	var litStart int
	flushLiteral := func(end int) {
		if end > litStart {
			out = append(out, opLiteral)
			out = binary.AppendUvarint(out, uint64(end-litStart))
			out = append(out, target[litStart:end]...)
		}
	}
	emitCopy := func(first, count int) {
		out = append(out, opCopy)
		out = binary.AppendUvarint(out, uint64(first))
		out = binary.AppendUvarint(out, uint64(count))
	}

	i := 0
	pendingFirst, pendingCount, pendingNext := -1, 0, -1
	flushCopy := func() {
		if pendingCount > 0 {
			emitCopy(pendingFirst, pendingCount)
			pendingFirst, pendingCount, pendingNext = -1, 0, -1
		}
	}
	var r roller
	rValid := false
	for i+bs <= len(target) {
		if !rValid {
			r = newRoller(target[i : i+bs])
			rValid = true
		}
		match := -1
		if cands, ok := sig.weakIndex[r.sum()]; ok {
			strong := md5.Sum(target[i : i+bs])
			for _, c := range cands {
				// Only full-size blocks participate in sliding matches.
				if blockLen(sig, c) == bs && sig.strong[c] == strong {
					match = c
					break
				}
			}
		}
		if match >= 0 {
			flushLiteral(i)
			if pendingCount > 0 && match == pendingNext {
				pendingCount++
				pendingNext++
			} else {
				flushCopy()
				pendingFirst, pendingCount, pendingNext = match, 1, match+1
			}
			i += bs
			litStart = i
			rValid = false
			continue
		}
		flushCopy()
		if i+bs < len(target) {
			r.roll(target[i], target[i+bs])
		}
		i++
	}
	flushCopy()
	// Tail: try to match the (possibly short) final source block exactly.
	if litStart < len(target) {
		tail := target[litStart:]
		if n := sig.Blocks(); n > 0 && blockLen(sig, n-1) == len(tail) &&
			sig.weak[n-1] == weakSum(tail) && sig.strong[n-1] == md5.Sum(tail) {
			emitCopy(n-1, 1)
		} else {
			flushLiteral(len(target))
		}
	}
	return out
}

func blockLen(sig *Signature, i int) int {
	if i == sig.Blocks()-1 {
		if rem := sig.totalLen % sig.BlockSize; rem != 0 {
			return rem
		}
	}
	return sig.BlockSize
}

// Errors from Apply.
var (
	ErrCorruptDelta = errors.New("delta: corrupt delta stream")
	ErrBadBase      = errors.New("delta: base does not match delta geometry")
)

// Apply reconstructs the target document from the receiver's old version
// and a delta produced against its signature.
func Apply(old, delta []byte) ([]byte, error) {
	bsU, n := binary.Uvarint(delta)
	if n <= 0 || bsU == 0 {
		return nil, ErrCorruptDelta
	}
	bs := int(bsU)
	delta = delta[n:]
	baseLen, n := binary.Uvarint(delta)
	if n <= 0 {
		return nil, ErrCorruptDelta
	}
	delta = delta[n:]
	if uint64(len(old)) != baseLen {
		return nil, fmt.Errorf("%w: base is %d bytes, delta expects %d", ErrBadBase, len(old), baseLen)
	}
	var out []byte
	for len(delta) > 0 {
		op := delta[0]
		delta = delta[1:]
		switch op {
		case opCopy:
			first, n := binary.Uvarint(delta)
			if n <= 0 {
				return nil, ErrCorruptDelta
			}
			delta = delta[n:]
			count, n := binary.Uvarint(delta)
			if n <= 0 || count == 0 {
				return nil, ErrCorruptDelta
			}
			delta = delta[n:]
			start := int(first) * bs
			end := start + int(count)*bs
			if end > len(old) {
				end = len(old)
			}
			if start >= len(old) || end <= start {
				return nil, fmt.Errorf("%w: copy [%d,%d) of %d", ErrBadBase, start, end, len(old))
			}
			out = append(out, old[start:end]...)
		case opLiteral:
			l, n := binary.Uvarint(delta)
			if n <= 0 || uint64(len(delta)-n) < l {
				return nil, ErrCorruptDelta
			}
			delta = delta[n:]
			out = append(out, delta[:l]...)
			delta = delta[l:]
		default:
			return nil, fmt.Errorf("%w: op 0x%02x", ErrCorruptDelta, op)
		}
	}
	return out, nil
}

// Transfer summarizes the economics of one delta exchange for accounting:
// what crossing the wire costs with and without delta compression.
type Transfer struct {
	FullBytes      int // sending the new document outright
	SignatureBytes int // stale holder -> owner
	DeltaBytes     int // owner -> stale holder
}

// Saved reports the byte saving (negative when delta transfer loses).
func (t Transfer) Saved() int { return t.FullBytes - t.SignatureBytes - t.DeltaBytes }

// Plan computes the delta between old and new versions and returns both
// the delta stream and its economics.
func Plan(old, new []byte, blockSize int) ([]byte, Transfer) {
	sig := NewSignature(old, blockSize)
	d := Encode(sig, new)
	return d, Transfer{
		FullBytes:      len(new),
		SignatureBytes: sig.SignatureBytes(),
		DeltaBytes:     len(d),
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// statsDriftRule enforces the PR-1 contract that a Stats() snapshot and a
// /metrics scrape read the same instruments: every *plain instrument* a
// package registers against an obs.Registry (reg.Counter, reg.Gauge or
// reg.Histogram with a "summarycache_*" literal) must surface as an
// exported field of one of the package's exported ...Stats structs
// (histograms via their obs.HistogramSnapshot scalar form).
//
// Scope is deliberately narrow so the rule stays true:
//   - only plain registrations are checked — CounterFunc/GaugeFunc
//     re-export state owned elsewhere (the inverse direction of the
//     contract);
//   - a package with no exported Stats struct (e.g. internal/tracing and
//     internal/perfwatch, whose instruments are exposition-only by
//     design) is skipped entirely;
//   - the metric name is normalized (strip "summarycache_", the
//     component prefix word, and the "_total" suffix; CamelCase the
//     rest, uppercasing known initialisms like rtt → RTT) and must match
//     a field exactly or as a field-name suffix, so "requests" matches
//     ClientRequests.
type statsDriftRule struct{}

func (statsDriftRule) Name() string { return RuleStatsDrift }

func (statsDriftRule) Doc() string {
	return "every plain counter/gauge/histogram registered with obs must have a matching exported field in the package's Stats struct"
}

// statsFields collects the exported field names of every exported struct
// type in the package whose name is "Stats" or ends in "Stats".
func statsFields(pkg *Package) (names map[string]bool, structs []string) {
	if pkg.Types == nil {
		return nil, nil
	}
	names = map[string]bool{}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || !strings.HasSuffix(tn.Name(), "Stats") {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		structs = append(structs, tn.Name())
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Exported() {
				names[f.Name()] = true
			}
		}
	}
	sort.Strings(structs)
	return names, structs
}

// metricInitialisms are metric-name words rendered fully uppercase in Go
// field names, so summarycache_node_query_rtt_seconds normalizes to
// QueryRTTSeconds rather than QueryRttSeconds.
var metricInitialisms = map[string]string{
	"cpu":  "CPU",
	"fpr":  "FPR",
	"http": "HTTP",
	"icp":  "ICP",
	"id":   "ID",
	"lru":  "LRU",
	"rtt":  "RTT",
	"slo":  "SLO",
	"tcp":  "TCP",
	"udp":  "UDP",
	"url":  "URL",
}

// metricFieldName normalizes a registered metric name to the exported
// field it should correspond to: summarycache_node_queries_sent_total →
// QueriesSent (prefix, component word and _total suffix stripped, rest
// CamelCased with initialisms uppercased).
func metricFieldName(metric string) string {
	name := strings.TrimPrefix(metric, "summarycache_")
	words := strings.Split(name, "_")
	if len(words) > 1 && words[len(words)-1] == "total" {
		words = words[:len(words)-1]
	}
	if len(words) > 1 {
		words = words[1:] // drop the component prefix (proxy_, node_, ...)
	}
	var b strings.Builder
	for _, w := range words {
		if w == "" {
			continue
		}
		if up, ok := metricInitialisms[w]; ok {
			b.WriteString(up)
			continue
		}
		b.WriteString(strings.ToUpper(w[:1]))
		b.WriteString(w[1:])
	}
	return b.String()
}

// obsRegistrationKind returns the instrument kind ("counter", "gauge" or
// "histogram") when call is a plain reg.Counter/Gauge/Histogram(...) on
// an obs.Registry (matched by package name + receiver type name, so
// fixture universes can supply their own obs shape), and "" otherwise.
// CounterFunc/GaugeFunc deliberately do not match: they re-export state
// owned elsewhere.
func obsRegistrationKind(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return ""
	}
	var kind string
	switch fn.Name() {
	case "Counter":
		kind = "counter"
	case "Gauge":
		kind = "gauge"
	case "Histogram":
		kind = "histogram"
	default:
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !strings.Contains(recv.Type().String(), "Registry") {
		return ""
	}
	return kind
}

func (statsDriftRule) Check(pkg *Package, report ReportFunc) {
	fields, structs := statsFields(pkg)
	if len(structs) == 0 {
		return // no Stats contract in this package — nothing to drift from
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			kind := obsRegistrationKind(pkg, call)
			if kind == "" {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true
			}
			metric, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(metric, "summarycache_") {
				return true
			}
			want := metricFieldName(metric)
			for name := range fields {
				if name == want || strings.HasSuffix(name, want) {
					return true
				}
			}
			report(lit.Pos(),
				"%s %q has no matching exported field (looked for %q, or a field ending in it, on %s); Stats() and the scrape have drifted",
				kind, metric, want, strings.Join(structs, ", "))
			return true
		})
	}
}

package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardStatsOccupancy(t *testing.T) {
	c := MustNewCache(Config{Capacity: 1 << 20, Shards: 4, MaxObjectSize: 1 << 16})
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", c.Shards())
	}
	for i := 0; i < 100; i++ {
		c.Put(Entry{Key: fmt.Sprintf("doc-%d", i), Size: 100})
	}
	stats := c.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats() returned %d shards, want 4", len(stats))
	}
	entries, bytes, capacity := 0, int64(0), int64(0)
	for i, s := range stats {
		if s.Shard != i {
			t.Errorf("stats[%d].Shard = %d", i, s.Shard)
		}
		entries += s.Entries
		bytes += s.Bytes
		capacity += s.Capacity
	}
	if entries != c.Len() {
		t.Errorf("sum of shard Entries = %d, want %d", entries, c.Len())
	}
	if bytes != c.Bytes() {
		t.Errorf("sum of shard Bytes = %d, want %d", bytes, c.Bytes())
	}
	if capacity != c.Capacity() {
		t.Errorf("sum of shard Capacity = %d, want %d", capacity, c.Capacity())
	}
	if c.ClockTicks() == 0 {
		t.Error("ClockTicks() = 0 after 100 inserts on a sharded cache")
	}
}

// TestLockContentionCounter drives one key from many goroutines; with a
// single shard the lock must be found held at least once, and the counter
// must surface through both ShardStats and Counters.
func TestLockContentionCounter(t *testing.T) {
	c := MustNewCache(Config{Capacity: 1 << 20, Shards: 1})
	c.Put(Entry{Key: "hot", Size: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.Get("hot")
			}
		}()
	}
	wg.Wait()
	got := c.Counters().LockContentions
	var sum uint64
	for _, s := range c.ShardStats() {
		sum += s.LockContentions
	}
	if got != sum {
		t.Errorf("Counters().LockContentions = %d, sum over ShardStats = %d", got, sum)
	}
	// 40k lock acquisitions across 8 goroutines on one shard: if this is
	// ever zero the TryLock path is not counting.
	if got == 0 {
		t.Skip("no contention observed (single-core scheduler); counter path covered by ShardStats sum check")
	}
}

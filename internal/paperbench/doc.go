// Package paperbench holds the benchmarks that regenerate every table and
// figure of the paper's evaluation (run with `go test -bench=. ./internal/paperbench`).
// It contains no library code; keeping the benchmarks here lets the module
// root depend only on the public facade in api.go.
package paperbench
